//! Graph-versioned extraction cache: the amortization layer of the batch
//! scoring engine.
//!
//! SSF extraction recomputes h-hop frontiers and full pipeline runs from
//! scratch for every candidate pair, yet pairs scored in one batch share
//! endpoints (so their BFS balls coincide) and pairs re-scored between
//! graph updates share everything. The cache memoizes both levels:
//!
//! * **per-endpoint balls** — `(node, h) →` bounded BFS frontier, the unit
//!   [`HopSubgraph::from_balls`](crate::HopSubgraph::from_balls) composes
//!   pairs from, and
//! * **per-pair K-structure results** — `(a, b) →` the selected
//!   [`KStructureSubgraph`] (everything *upstream* of the prediction time
//!   `l_t`; the cheap `K×K` matrix fill is redone per call so one cached
//!   pair serves any `l_t`).
//!
//! Invalidation is by **graph revision and window**:
//! [`dyngraph::DynamicNetwork`] bumps a monotone counter on every accepted
//! mutation (a sliding-window `advance` included), and
//! [`ExtractionCache::sync`] drops all memoized state whenever the observed
//! revision moves. Entries are therefore keyed `(pair, revision, window)`
//! in effect, without storing either per entry.
//!
//! Writers that know a mutation's *footprint* — the affected nodes from a
//! [`dyngraph::AdvanceReport`] plus any inserted link's endpoints — use
//! [`ExtractionCache::sync_affected`] instead and keep everything else: a
//! memoized BFS ball can only change if the mutation touched one of its
//! members (every shortest path into a ball runs through the ball), and a
//! memoized pair can only change if the mutation touched its recorded
//! dependency set ([`CachedPair::deps`], the merged-ball node set its
//! pipeline examined). Reverse indexes (node → ball keys / pair keys) make
//! that O(entries-containing-an-affected-node), proportional to the damage
//! `d`, never a full flush.
//!
//! Cached and uncached extractions are **bit-identical** by construction:
//! both route through the same canonical-order subgraph assembly and the
//! same refinement code, and reusing scratch buffers or memoized balls
//! never changes any intermediate value (`tests/properties.rs` proves this
//! end to end against live `observe`/`score_batch` interleavings).

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

use dyngraph::{GraphView, NodeId, Timestamp};
use obs::ObsHandle;

use crate::feature::DijkstraScratch;
use crate::hop::{ball, ball_extend, HopScratch};
use crate::kstructure::KStructureSubgraph;
use crate::palette::WlScratch;
use crate::structure::StructureScratch;

/// Reusable buffers for the whole extraction pipeline, threaded through
/// hop extraction, structure combination, Palette-WL refinement, and the
/// reciprocal-distance encoding.
#[derive(Debug, Clone, Default)]
pub struct ExtractScratch {
    /// BFS + ball-merge buffers.
    pub hop: HopScratch,
    /// Algorithm 1 fixpoint buffers.
    pub structure: StructureScratch,
    /// Palette-WL buffers (notably the prime/log tables).
    pub wl: WlScratch,
    /// Bounded-Dijkstra buffers for the reciprocal-distance encoding.
    pub dijkstra: DijkstraScratch,
}

/// A bounded-size memo with LRU-style segmented eviction.
///
/// Entries are stamped with a monotone tick on insert and on every hit;
/// when the map reaches capacity the oldest half (by stamp) is dropped in
/// one `O(n)` sweep. This trades exact LRU order for zero per-entry list
/// maintenance — eviction affects only performance, never output, because
/// cached and recomputed values are identical.
#[derive(Debug, Clone)]
pub struct LruCache<K, V> {
    map: HashMap<K, (u64, V)>,
    tick: u64,
    capacity: usize,
}

impl<K: Eq + Hash, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::new(),
            tick: 0,
            capacity: capacity.max(1),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops every entry (stamps restart; capacity is kept).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Looks up `key`, refreshing its eviction stamp on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(stamp, v)| {
            *stamp = tick;
            &*v
        })
    }

    /// Iterates over live entries in arbitrary order (stamps stay
    /// untouched — iteration is not a "use" for eviction purposes).
    pub fn entries(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter().map(|(k, (_, v))| (k, v))
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.map.remove(key).map(|(_, v)| v)
    }

    /// Inserts `key → value`, evicting the stalest half first when full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            let mut stamps: Vec<u64> =
                self.map.values().map(|&(s, _)| s).collect();
            stamps.sort_unstable();
            // Keep the newer half: drop stamps up to the lower median.
            let cutoff = stamps[(stamps.len() - 1) / 2];
            self.map.retain(|_, &mut (s, _)| s > cutoff);
        }
        self.tick += 1;
        self.map.insert(key, (self.tick, value));
    }
}

/// The `l_t`-independent prefix of one pair's extraction: Algorithm 3
/// lines 1–8 (hop growth, structure combination, Palette-WL selection).
#[derive(Debug, Clone, PartialEq)]
pub struct CachedPair {
    /// The selected K-structure subgraph.
    pub ks: KStructureSubgraph,
    /// The hop radius the adaptive growth stopped at.
    pub h_used: u32,
    /// `|V_S|` of the final structure subgraph.
    pub structure_nodes: usize,
    /// Invalidation footprint: the merged-ball node set the pipeline
    /// examined, sorted ascending. A graph mutation leaves this result
    /// bit-identical unless it touches one of these nodes — the basis of
    /// [`ExtractionCache::sync_affected`]'s selective invalidation.
    pub deps: Vec<NodeId>,
}

/// Hit/miss/invalidation counters of an [`ExtractionCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Per-endpoint ball lookups served from the memo.
    pub ball_hits: u64,
    /// Per-endpoint ball lookups that ran a fresh BFS.
    pub ball_misses: u64,
    /// Per-pair lookups served from the memo.
    pub pair_hits: u64,
    /// Per-pair lookups that ran the full pipeline.
    pub pair_misses: u64,
    /// Times the graph revision moved and the memos were dropped.
    pub invalidations: u64,
    /// Times a revision/window move was absorbed selectively (only the
    /// entries touching affected nodes were dropped).
    pub selective_invalidations: u64,
    /// Individual memo entries (balls + pairs) dropped by selective
    /// invalidation — proportional to mutation damage, not cache size.
    pub entries_invalidated: u64,
}

impl CacheStats {
    /// Fraction of all lookups (balls + pairs) served from the memo;
    /// 0.0 when nothing was looked up yet.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.ball_hits + self.pair_hits;
        let total = hits + self.ball_misses + self.pair_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Total lookups, hits and misses, balls and pairs combined.
    pub fn total_lookups(&self) -> u64 {
        self.ball_hits + self.ball_misses + self.pair_hits + self.pair_misses
    }

    /// Folds another cache's tallies into this one — the aggregation the
    /// batch extraction paths use to combine per-chunk caches into one
    /// hit-rate account.
    pub fn merge(&mut self, other: &CacheStats) {
        self.ball_hits += other.ball_hits;
        self.ball_misses += other.ball_misses;
        self.pair_hits += other.pair_hits;
        self.pair_misses += other.pair_misses;
        self.invalidations += other.invalidations;
        self.selective_invalidations += other.selective_invalidations;
        self.entries_invalidated += other.entries_invalidated;
    }
}

/// An immutable, shareable view of an [`ExtractionCache`]'s memos at one
/// graph revision.
///
/// Produced by [`ExtractionCache::freeze`] and consumed by
/// [`ExtractionCache::with_frozen`]: a fresh mutable cache seeded with a
/// frozen view serves lookups from the view on a local miss, so many
/// reader threads can share one warm memo without locking. The view is
/// `Send + Sync` (all payloads are `Arc`-shared immutable data) and stays
/// valid only for the revision it was frozen at — a seeded cache drops it
/// as soon as [`ExtractionCache::sync`] observes a newer revision.
///
/// Frozen lookups never change extraction output: the view holds the same
/// bit-identical balls and pair results a cold cache would recompute.
#[derive(Debug, Clone)]
pub struct FrozenCacheView {
    revision: u64,
    window: Option<(Timestamp, Timestamp)>,
    config_key: (usize, u32),
    balls: Arc<HashMap<(NodeId, u32), CachedBall>>,
    pairs: Arc<HashMap<(NodeId, NodeId), Arc<CachedPair>>>,
}

impl FrozenCacheView {
    /// The graph revision the view was frozen at.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The sliding window `(width, horizon)` the view was frozen under,
    /// `None` for an unbounded graph. Reuse requires both the revision
    /// *and* the window to match — two graphs must never trade memos
    /// across different windows even if their revisions coincide (e.g.
    /// across recovery lineages).
    pub fn window(&self) -> Option<(Timestamp, Timestamp)> {
        self.window
    }

    /// Frozen entry counts `(balls, pairs)`.
    pub fn len(&self) -> (usize, usize) {
        (self.balls.len(), self.pairs.len())
    }

    /// Whether the view holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.balls.is_empty() && self.pairs.is_empty()
    }
}

/// The graph-versioned extraction cache (see the [module docs](self)).
///
/// One cache serves one graph value over time — any [`GraphView`]
/// implementor works, since `sync` tracks the view's revision counter.
/// Pair keys are directional — `(a, b)` and `(b, a)` are distinct targets
/// because the endpoints pin Palette-WL orders 1 and 2 respectively.
/// A memoized per-endpoint h-hop frontier: `(node, min-distance)` pairs
/// in BFS layer order, the source first at distance 0.
pub type CachedBall = Arc<Vec<(NodeId, u32)>>;

/// Reverse indexes tolerate this many slots before their first
/// stale-entry compaction; afterwards the trigger doubles with the live
/// slot count (amortized O(1) per insert).
const INDEX_REBUILD_FLOOR: usize = 1 << 14;

#[derive(Debug, Clone)]
pub struct ExtractionCache {
    revision: u64,
    /// The sliding window `(width, horizon)` the memos were filled
    /// under; `None` for unbounded graphs (or when unknown, after a
    /// footprint-blind [`ExtractionCache::sync`] drop).
    window: Option<(Timestamp, Timestamp)>,
    /// `(k, max_h)` the pair memo was filled under; balls are
    /// config-independent and survive config changes.
    config_key: (usize, u32),
    balls: LruCache<(NodeId, u32), CachedBall>,
    pairs: LruCache<(NodeId, NodeId), Arc<CachedPair>>,
    /// Reverse index: member node → ball keys whose memo contains it.
    /// May hold stale keys for evicted balls (removal is idempotent);
    /// rebuilt from live entries when it outgrows its trigger.
    ball_index: HashMap<NodeId, Vec<(NodeId, u32)>>,
    /// Reverse index: dependency node → pair keys depending on it.
    pair_index: HashMap<NodeId, Vec<(NodeId, NodeId)>>,
    /// Slots pushed into `ball_index` since its last rebuild, and the
    /// bloat threshold that forces the next rebuild (amortized O(1)).
    ball_index_slots: usize,
    ball_index_trigger: usize,
    pair_index_slots: usize,
    pair_index_trigger: usize,
    /// Read-only fallback consulted on local misses (same revision and
    /// window only; pair lookups additionally require a matching config
    /// key).
    frozen: Option<FrozenCacheView>,
    pub(crate) scratch: ExtractScratch,
    pub(crate) stats: CacheStats,
    pub(crate) obs: ObsHandle,
}

impl Default for ExtractionCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ExtractionCache {
    /// Default memo capacities: 8192 balls, 8192 pairs.
    pub fn new() -> Self {
        Self::with_capacity(8192, 8192)
    }

    /// Creates a cache with explicit memo capacities.
    pub fn with_capacity(balls: usize, pairs: usize) -> Self {
        ExtractionCache {
            revision: 0,
            window: None,
            config_key: (0, 0),
            balls: LruCache::new(balls),
            pairs: LruCache::new(pairs),
            ball_index: HashMap::new(),
            pair_index: HashMap::new(),
            ball_index_slots: 0,
            ball_index_trigger: INDEX_REBUILD_FLOOR,
            pair_index_slots: 0,
            pair_index_trigger: INDEX_REBUILD_FLOOR,
            frozen: None,
            scratch: ExtractScratch::default(),
            stats: CacheStats::default(),
            obs: ObsHandle::noop(),
        }
    }

    /// A default-capacity cache whose extractions emit per-stage spans
    /// (`ssf.core.*`) through `recorder`. The no-op handle makes this
    /// identical to [`ExtractionCache::new`].
    pub fn with_recorder(recorder: ObsHandle) -> Self {
        let mut cache = Self::new();
        cache.obs = recorder;
        cache
    }

    /// Replaces the telemetry recorder (metrics only — never affects
    /// cached values; see the bit-identity tests).
    pub fn set_recorder(&mut self, recorder: ObsHandle) {
        self.obs = recorder;
    }

    /// The telemetry handle extractions running against this cache use.
    pub fn recorder(&self) -> &ObsHandle {
        &self.obs
    }

    /// A default-capacity cache seeded with a frozen read-only view.
    ///
    /// The new cache starts at the view's revision and config, so lookups
    /// against the same (unchanged) graph hit the frozen memos without an
    /// initial invalidation. Once the graph moves past the frozen
    /// revision, `sync` drops the view along with the local memos.
    pub fn with_frozen(view: FrozenCacheView) -> Self {
        let mut cache = Self::new();
        cache.revision = view.revision;
        cache.window = view.window;
        cache.config_key = view.config_key;
        cache.frozen = Some(view);
        cache
    }

    /// Captures the current memos as an immutable, `Arc`-shared view.
    ///
    /// Entries from an underlying frozen layer (if any, and still at this
    /// revision) are folded in, overlaid by the live local memos, so
    /// freezing a seeded cache loses no warmth.
    pub fn freeze(&self) -> FrozenCacheView {
        let mut balls: HashMap<(NodeId, u32), CachedBall> = match &self.frozen {
            Some(f)
                if f.revision == self.revision && f.window == self.window =>
            {
                (*f.balls).clone()
            }
            _ => HashMap::new(),
        };
        for (k, v) in self.balls.entries() {
            balls.insert(*k, Arc::clone(v));
        }
        let mut pairs: HashMap<(NodeId, NodeId), Arc<CachedPair>> =
            match &self.frozen {
                Some(f)
                    if f.revision == self.revision
                        && f.window == self.window
                        && f.config_key == self.config_key =>
                {
                    (*f.pairs).clone()
                }
                _ => HashMap::new(),
            };
        for (k, v) in self.pairs.entries() {
            pairs.insert(*k, Arc::clone(v));
        }
        FrozenCacheView {
            revision: self.revision,
            window: self.window,
            config_key: self.config_key,
            balls: Arc::new(balls),
            pairs: Arc::new(pairs),
        }
    }

    /// Counters accumulated since construction (they survive
    /// invalidation — they describe the cache, not the current graph).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Live entry counts `(balls, pairs)`.
    pub fn len(&self) -> (usize, usize) {
        (self.balls.len(), self.pairs.len())
    }

    /// Whether both memos are empty.
    pub fn is_empty(&self) -> bool {
        self.balls.is_empty() && self.pairs.is_empty()
    }

    /// Drops every memoized ball and pair (and any frozen base view),
    /// keeping the stats counters — they describe the cache's lifetime,
    /// not its current contents. The next lookup simply runs cold;
    /// results are unaffected. Used under memory pressure and by
    /// benchmarks that need repeatable cold-path measurements.
    pub fn clear(&mut self) {
        self.balls.clear();
        self.pairs.clear();
        self.clear_ball_index();
        self.clear_pair_index();
        self.frozen = None;
    }

    /// The sliding window the memos were last synced under (see
    /// [`FrozenCacheView::window`]).
    pub fn window(&self) -> Option<(Timestamp, Timestamp)> {
        self.window
    }

    /// Re-keys the cache to `g`'s current revision, dropping every memo
    /// entry if the graph changed since the last sync. The footprint-blind
    /// fallback: a revision move whose affected nodes are unknown could
    /// have touched anything. Writers that know the footprint use
    /// [`ExtractionCache::sync_affected`] and keep the rest.
    pub fn sync<G: GraphView + ?Sized>(&mut self, g: &G) {
        let rev = g.revision();
        if rev != self.revision {
            if !self.is_empty() {
                self.stats.invalidations += 1;
            }
            self.balls.clear();
            self.pairs.clear();
            self.clear_ball_index();
            self.clear_pair_index();
            if self.frozen.as_ref().is_some_and(|f| f.revision != rev) {
                self.frozen = None;
            }
            self.revision = rev;
            self.window = None;
        }
    }

    /// Re-keys the cache to `g`'s revision and `window`, dropping *only*
    /// the memos a mutation with the given footprint could have changed:
    /// balls containing an affected node and pairs whose dependency set
    /// meets one. O(entries naming an affected node) — proportional to
    /// the damage `d`, never a flush of the whole cache.
    ///
    /// `affected` is the union of every mutated link's endpoints since
    /// the last sync: [`dyngraph::AdvanceReport::affected`] for expiries
    /// plus the endpoints of any inserts (node-growth-only mutations
    /// contribute nothing — an isolated new node is in no memoized
    /// subgraph). Soundness: removing or adding links that touch no node
    /// of a BFS ball cannot change the ball (every shortest path into a
    /// ball runs entirely through it), and a pair result is a function
    /// of the balls over its recorded dependency set.
    ///
    /// The frozen fallback layer, if any, is keyed to the old revision
    /// and is dropped; callers holding one are readers that re-seed per
    /// snapshot anyway.
    pub fn sync_affected<G: GraphView + ?Sized>(
        &mut self,
        g: &G,
        window: Option<(Timestamp, Timestamp)>,
        affected: &[NodeId],
    ) {
        let rev = g.revision();
        if rev == self.revision && window == self.window {
            return;
        }
        let mut dropped = 0u64;
        for &node in affected {
            if let Some(keys) = self.ball_index.remove(&node) {
                for key in keys {
                    if self.balls.remove(&key).is_some() {
                        dropped += 1;
                    }
                }
            }
            if let Some(keys) = self.pair_index.remove(&node) {
                for key in keys {
                    if self.pairs.remove(&key).is_some() {
                        dropped += 1;
                    }
                }
            }
        }
        // The frozen layer is immutable and keyed to the old revision;
        // it cannot be filtered in place.
        self.frozen = None;
        self.stats.selective_invalidations += 1;
        self.stats.entries_invalidated += dropped;
        self.revision = rev;
        self.window = window;
    }

    /// Drops the pair memo if the extractor configuration it was filled
    /// under differs (balls survive: they depend only on the graph).
    pub(crate) fn sync_config(&mut self, k: usize, max_h: u32) {
        if self.config_key != (k, max_h) {
            self.pairs.clear();
            self.clear_pair_index();
            self.config_key = (k, max_h);
        }
    }

    fn clear_ball_index(&mut self) {
        self.ball_index.clear();
        self.ball_index_slots = 0;
        self.ball_index_trigger = INDEX_REBUILD_FLOOR;
    }

    fn clear_pair_index(&mut self) {
        self.pair_index.clear();
        self.pair_index_slots = 0;
        self.pair_index_trigger = INDEX_REBUILD_FLOOR;
    }

    /// Records `key` in the ball reverse index under every member of
    /// `members`, compacting the index when stale slots (left behind by
    /// LRU eviction) outgrow the rebuild trigger.
    fn index_ball(&mut self, key: (NodeId, u32), members: &[(NodeId, u32)]) {
        for &(node, _) in members {
            self.ball_index.entry(node).or_default().push(key);
        }
        self.ball_index_slots += members.len();
        if self.ball_index_slots > self.ball_index_trigger {
            let mut index: HashMap<NodeId, Vec<(NodeId, u32)>> = HashMap::new();
            let mut slots = 0usize;
            for (&k, ball) in self.balls.entries() {
                for &(node, _) in ball.iter() {
                    index.entry(node).or_default().push(k);
                    slots += 1;
                }
            }
            self.ball_index = index;
            self.ball_index_slots = slots;
            self.ball_index_trigger = (2 * slots).max(INDEX_REBUILD_FLOOR);
        }
    }

    /// Pair-side twin of [`ExtractionCache::index_ball`].
    fn index_pair(&mut self, key: (NodeId, NodeId), deps: &[NodeId]) {
        for &node in deps {
            self.pair_index.entry(node).or_default().push(key);
        }
        self.pair_index_slots += deps.len();
        if self.pair_index_slots > self.pair_index_trigger {
            let mut index: HashMap<NodeId, Vec<(NodeId, NodeId)>> =
                HashMap::new();
            let mut slots = 0usize;
            for (&k, pair) in self.pairs.entries() {
                for &node in &pair.deps {
                    index.entry(node).or_default().push(k);
                    slots += 1;
                }
            }
            self.pair_index = index;
            self.pair_index_slots = slots;
            self.pair_index_trigger = (2 * slots).max(INDEX_REBUILD_FLOOR);
        }
    }

    /// Memoized bounded BFS ball of `src` at radius `h`.
    ///
    /// # Panics
    ///
    /// Panics if `src` is outside `g` (callers validate endpoints first).
    pub(crate) fn ball<G: GraphView + ?Sized>(
        &mut self,
        g: &G,
        src: NodeId,
        h: u32,
    ) -> CachedBall {
        if let Some(b) = self.balls.get(&(src, h)) {
            self.stats.ball_hits += 1;
            return Arc::clone(b);
        }
        if let Some(b) = self
            .frozen
            .as_ref()
            .filter(|f| f.revision == self.revision && f.window == self.window)
            .and_then(|f| f.balls.get(&(src, h)))
        {
            self.stats.ball_hits += 1;
            let b = Arc::clone(b);
            self.balls.insert((src, h), Arc::clone(&b));
            self.index_ball((src, h), &b);
            return b;
        }
        self.stats.ball_misses += 1;
        // K-growth requests radii incrementally; when the radius-(h−1) ball
        // is already memoized, extend it instead of rediscovering the inner
        // layers — bit-identical because BFS layers are strict prefixes.
        let prev: Option<CachedBall> = if h > 1 {
            self.balls.get(&(src, h - 1)).map(Arc::clone).or_else(|| {
                self.frozen
                    .as_ref()
                    .filter(|f| {
                        f.revision == self.revision && f.window == self.window
                    })
                    .and_then(|f| f.balls.get(&(src, h - 1)))
                    .map(Arc::clone)
            })
        } else {
            None
        };
        let span = self.obs.span("ssf.core.ball");
        let b = match prev {
            Some(p) => Arc::new(ball_extend(
                g,
                p.as_slice(),
                h - 1,
                h,
                &mut self.scratch.hop,
            )),
            None => Arc::new(ball(g, src, h, &mut self.scratch.hop)),
        };
        span.finish();
        self.balls.insert((src, h), Arc::clone(&b));
        self.index_ball((src, h), &b);
        b
    }

    /// Memoized pair lookup (no recording of misses: the caller decides
    /// whether a miss leads to a computation).
    pub(crate) fn pair(
        &mut self,
        a: NodeId,
        b: NodeId,
    ) -> Option<Arc<CachedPair>> {
        if let Some(p) = self.pairs.get(&(a, b)) {
            return Some(Arc::clone(p));
        }
        let p = self
            .frozen
            .as_ref()
            .filter(|f| {
                f.revision == self.revision
                    && f.window == self.window
                    && f.config_key == self.config_key
            })
            .and_then(|f| f.pairs.get(&(a, b)))
            .map(Arc::clone)?;
        self.pairs.insert((a, b), Arc::clone(&p));
        self.index_pair((a, b), &p.deps);
        Some(p)
    }

    /// Stores a freshly computed pair result, recording its dependency
    /// set in the reverse index for selective invalidation.
    pub(crate) fn insert_pair(
        &mut self,
        a: NodeId,
        b: NodeId,
        pair: Arc<CachedPair>,
    ) {
        self.index_pair((a, b), &pair.deps);
        self.pairs.insert((a, b), pair);
    }
}

#[cfg(test)]
mod tests {
    use dyngraph::DynamicNetwork;

    use super::*;

    #[test]
    fn lru_get_and_insert_round_trip() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        assert!(c.is_empty());
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&3), None);
        assert_eq!(c.len(), 2);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        for i in 0..4 {
            c.insert(i, i);
        }
        // Touch 0 and 1 so 2 and 3 are the stale half.
        assert!(c.get(&0).is_some());
        assert!(c.get(&1).is_some());
        c.insert(4, 4);
        assert!(c.len() <= 4);
        assert_eq!(c.get(&0), Some(&0));
        assert_eq!(c.get(&1), Some(&1));
        assert_eq!(c.get(&4), Some(&4));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&3), None);
    }

    #[test]
    fn lru_capacity_one_still_works() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        c.insert(1, 1);
        c.insert(2, 2);
        assert_eq!(c.get(&2), Some(&2));
        assert_eq!(c.get(&1), None);
    }

    #[test]
    fn lru_reinsert_replaces_without_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 1);
        c.insert(2, 2);
        c.insert(1, 11);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.get(&2), Some(&2));
    }

    #[test]
    fn sync_invalidates_on_revision_change_only() {
        let mut g = DynamicNetwork::new();
        g.extend([(0, 1, 1), (1, 2, 2)]);
        let mut cache = ExtractionCache::new();
        cache.sync(&g);
        let _ = cache.ball(&g, 0, 1);
        assert_eq!(cache.len().0, 1);
        cache.sync(&g); // same revision: memo survives
        assert_eq!(cache.len().0, 1);
        g.add_link(0, 2, 3);
        cache.sync(&g); // revision moved: memo dropped
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn ball_memo_hits_and_misses_are_counted() {
        let mut g = DynamicNetwork::new();
        g.extend([(0, 1, 1), (1, 2, 2)]);
        let mut cache = ExtractionCache::new();
        cache.sync(&g);
        let fresh = cache.ball(&g, 1, 2);
        let memo = cache.ball(&g, 1, 2);
        assert_eq!(fresh, memo);
        assert_eq!(cache.stats().ball_misses, 1);
        assert_eq!(cache.stats().ball_hits, 1);
        assert!(cache.stats().hit_rate() > 0.0);
    }

    #[test]
    fn sync_affected_drops_only_touched_balls() {
        // A path 0-1-2-3-4-5: the radius-1 balls of 0 and 5 are disjoint.
        let mut g = DynamicNetwork::new();
        g.extend([(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 4, 4), (4, 5, 5)]);
        let mut cache = ExtractionCache::new();
        cache.sync(&g);
        let _ = cache.ball(&g, 0, 1);
        let far = cache.ball(&g, 5, 1);
        assert_eq!(cache.len().0, 2);
        // Mutate near node 0 only: the far ball must survive and hit.
        g.add_link(0, 2, 6);
        cache.sync_affected(&g, None, &[0, 2]);
        assert_eq!(cache.stats().invalidations, 0);
        assert_eq!(cache.stats().selective_invalidations, 1);
        assert_eq!(cache.stats().entries_invalidated, 1);
        assert_eq!(cache.len().0, 1);
        let hits_before = cache.stats().ball_hits;
        let served = cache.ball(&g, 5, 1);
        assert!(Arc::ptr_eq(&far, &served));
        assert_eq!(cache.stats().ball_hits, hits_before + 1);
        // The invalidated ball recomputes fresh (and is correct).
        let fresh = cache.ball(&g, 0, 1);
        assert!(fresh.iter().any(|&(n, _)| n == 2));
    }

    #[test]
    fn sync_affected_drops_pairs_by_dependency_set() {
        let mut g = DynamicNetwork::new();
        g.extend([(0, 1, 1), (4, 5, 2)]);
        let mut cache = ExtractionCache::new();
        cache.sync(&g);
        cache.sync_config(4, 10);
        let pair = |deps: Vec<NodeId>| {
            Arc::new(CachedPair {
                ks: KStructureSubgraph::empty(3),
                h_used: 1,
                structure_nodes: 2,
                deps,
            })
        };
        cache.insert_pair(0, 1, pair(vec![0, 1]));
        cache.insert_pair(4, 5, pair(vec![4, 5]));
        g.add_link(1, 2, 3);
        cache.sync_affected(&g, None, &[1, 2]);
        assert!(cache.pair(0, 1).is_none());
        assert!(cache.pair(4, 5).is_some());
        assert_eq!(cache.stats().entries_invalidated, 1);
    }

    #[test]
    fn sync_affected_same_revision_and_window_is_a_noop() {
        let mut g = DynamicNetwork::new();
        g.extend([(0, 1, 1)]);
        let mut cache = ExtractionCache::new();
        cache.sync_affected(&g, Some((10, 5)), &[0, 1]);
        let _ = cache.ball(&g, 0, 1);
        cache.sync_affected(&g, Some((10, 5)), &[0, 1]);
        assert_eq!(cache.len().0, 1, "no-op sync must not drop entries");
        assert_eq!(cache.window(), Some((10, 5)));
        // A pure window move at the same revision *is* a re-key.
        cache.sync_affected(&g, Some((10, 6)), &[]);
        assert_eq!(cache.window(), Some((10, 6)));
    }

    #[test]
    fn frozen_view_reuse_gated_on_window() {
        let mut g = DynamicNetwork::new();
        g.extend([(0, 1, 1), (1, 2, 2)]);
        let mut warm = ExtractionCache::new();
        warm.sync_affected(&g, Some((100, 2)), &[0, 1, 2]);
        let _ = warm.ball(&g, 1, 2);
        let view = warm.freeze();
        assert_eq!(view.window(), Some((100, 2)));
        let mut seeded = ExtractionCache::with_frozen(view);
        assert_eq!(seeded.window(), Some((100, 2)));
        // Same revision, different window: the frozen memo must not serve.
        seeded.sync_affected(&g, Some((100, 3)), &[]);
        let _ = seeded.ball(&g, 1, 2);
        assert_eq!(seeded.stats().ball_hits, 0);
        assert_eq!(seeded.stats().ball_misses, 1);
    }

    #[test]
    fn frozen_view_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrozenCacheView>();
    }

    #[test]
    fn frozen_view_serves_ball_hits_without_recompute() {
        let mut g = DynamicNetwork::new();
        g.extend([(0, 1, 1), (1, 2, 2)]);
        let mut warm = ExtractionCache::new();
        warm.sync(&g);
        let original = warm.ball(&g, 1, 2);
        let view = warm.freeze();
        assert_eq!(view.revision(), g.revision());
        assert_eq!(view.len().0, 1);

        let mut seeded = ExtractionCache::with_frozen(view);
        seeded.sync(&g); // same revision: frozen layer survives
        let served = seeded.ball(&g, 1, 2);
        assert_eq!(original, served);
        assert!(Arc::ptr_eq(&original, &served));
        assert_eq!(seeded.stats().ball_hits, 1);
        assert_eq!(seeded.stats().ball_misses, 0);
    }

    #[test]
    fn frozen_view_dropped_when_revision_moves() {
        let mut g = DynamicNetwork::new();
        g.extend([(0, 1, 1), (1, 2, 2)]);
        let mut warm = ExtractionCache::new();
        warm.sync(&g);
        let _ = warm.ball(&g, 1, 2);
        let mut seeded = ExtractionCache::with_frozen(warm.freeze());
        g.add_link(0, 2, 3);
        seeded.sync(&g);
        let _ = seeded.ball(&g, 1, 2);
        assert_eq!(seeded.stats().ball_hits, 0);
        assert_eq!(seeded.stats().ball_misses, 1);
    }

    #[test]
    fn frozen_pairs_gated_on_config_key() {
        let mut g = DynamicNetwork::new();
        g.extend([(0, 1, 1), (1, 2, 2)]);
        let mut warm = ExtractionCache::new();
        warm.sync(&g);
        warm.sync_config(4, 10);
        warm.insert_pair(
            0,
            1,
            Arc::new(CachedPair {
                ks: KStructureSubgraph::empty(3),
                h_used: 1,
                structure_nodes: 2,
                deps: vec![0, 1],
            }),
        );
        let mut seeded = ExtractionCache::with_frozen(warm.freeze());
        seeded.sync(&g);
        seeded.sync_config(4, 10);
        assert!(seeded.pair(0, 1).is_some());
        seeded.sync_config(5, 10); // config moved: frozen pairs invalid
        assert!(seeded.pair(0, 1).is_none());
    }

    #[test]
    fn freeze_folds_in_underlying_frozen_layer() {
        let mut g = DynamicNetwork::new();
        g.extend([(0, 1, 1), (1, 2, 2)]);
        let mut warm = ExtractionCache::new();
        warm.sync(&g);
        let _ = warm.ball(&g, 0, 2);
        let mut seeded = ExtractionCache::with_frozen(warm.freeze());
        seeded.sync(&g);
        let _ = seeded.ball(&g, 2, 2); // new local entry
        let refrozen = seeded.freeze();
        assert_eq!(refrozen.len().0, 2);
    }

    #[test]
    fn config_change_drops_pairs_but_keeps_balls() {
        let mut g = DynamicNetwork::new();
        g.extend([(0, 1, 1), (1, 2, 2)]);
        let mut cache = ExtractionCache::new();
        cache.sync(&g);
        cache.sync_config(4, 10);
        let _ = cache.ball(&g, 0, 1);
        cache.insert_pair(
            0,
            1,
            Arc::new(CachedPair {
                ks: KStructureSubgraph::empty(3),
                h_used: 1,
                structure_nodes: 2,
                deps: vec![0, 1],
            }),
        );
        assert_eq!(cache.len(), (1, 1));
        cache.sync_config(5, 10);
        assert_eq!(cache.len(), (1, 0));
    }
}
