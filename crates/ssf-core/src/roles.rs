//! Node-role analysis from structure subgraphs.
//!
//! §IV-A of the paper: "From structure subgraphs, we can easily observe
//! what kinds of roles the nodes play around the target link, which is not
//! only useful in link prediction, but also meaningful in other areas like
//! social analysis and entity resolution." This module makes that
//! observation executable: every structure node is classified by how it
//! relates to the target endpoints, and the analysis reports how strongly
//! the neighborhood aggregates.

use std::fmt;

use crate::hop::HopSubgraph;
use crate::structure::StructureSubgraph;

/// The role a structure node plays relative to the target link `(a, b)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRole {
    /// One of the two target endpoints themselves.
    Endpoint,
    /// Adjacent to *both* endpoints — the common-neighbor block that
    /// drives CN/AA/RA and the paper's Figure 1 argument.
    CommonNeighbor,
    /// Adjacent to endpoint `a` only (e.g. `a`'s fan crowd).
    SatelliteA,
    /// Adjacent to endpoint `b` only.
    SatelliteB,
    /// Not adjacent to either endpoint: farther context.
    Periphery,
}

impl fmt::Display for NodeRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeRole::Endpoint => "endpoint",
            NodeRole::CommonNeighbor => "common neighbor",
            NodeRole::SatelliteA => "satellite of a",
            NodeRole::SatelliteB => "satellite of b",
            NodeRole::Periphery => "periphery",
        };
        f.write_str(s)
    }
}

/// Role classification of one target link's structure subgraph.
#[derive(Debug, Clone, PartialEq)]
pub struct RoleAnalysis {
    /// Role per structure node (index-aligned with the structure
    /// subgraph).
    roles: Vec<NodeRole>,
    /// Underlying (hop-subgraph) node count per structure node.
    member_counts: Vec<usize>,
    hop_nodes: usize,
}

impl RoleAnalysis {
    /// Classifies every structure node of `s` (extracted from `hop`).
    ///
    /// # Panics
    ///
    /// Panics if `s` was not produced from `hop` (member indices out of
    /// range).
    pub fn analyze(hop: &HopSubgraph, s: &StructureSubgraph) -> Self {
        let roles = (0..s.node_count())
            .map(|x| {
                if x <= 1 {
                    return NodeRole::Endpoint;
                }
                let nbrs = s.neighbors(x);
                let to_a = nbrs.contains(&0);
                let to_b = nbrs.contains(&1);
                match (to_a, to_b) {
                    (true, true) => NodeRole::CommonNeighbor,
                    (true, false) => NodeRole::SatelliteA,
                    (false, true) => NodeRole::SatelliteB,
                    (false, false) => NodeRole::Periphery,
                }
            })
            .collect();
        let member_counts =
            (0..s.node_count()).map(|x| s.members(x).len()).collect();
        RoleAnalysis {
            roles,
            member_counts,
            hop_nodes: hop.node_count(),
        }
    }

    /// Role of structure node `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn role(&self, x: usize) -> NodeRole {
        self.roles[x]
    }

    /// Number of structure nodes with the given role.
    pub fn structure_nodes_with(&self, role: NodeRole) -> usize {
        self.roles.iter().filter(|&&r| r == role).count()
    }

    /// Number of *underlying* nodes playing the given role (structure
    /// nodes weighted by member count).
    pub fn nodes_with(&self, role: NodeRole) -> usize {
        self.roles
            .iter()
            .zip(&self.member_counts)
            .filter(|(&r, _)| r == role)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Compression achieved by structure combination:
    /// `hop nodes / structure nodes` (≥ 1.0; higher = more aggregation).
    pub fn aggregation_ratio(&self) -> f64 {
        self.hop_nodes as f64 / self.roles.len() as f64
    }
}

impl fmt::Display for RoleAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} nodes in {} structure nodes (aggregation ×{:.2})",
            self.hop_nodes,
            self.roles.len(),
            self.aggregation_ratio()
        )?;
        for role in [
            NodeRole::CommonNeighbor,
            NodeRole::SatelliteA,
            NodeRole::SatelliteB,
            NodeRole::Periphery,
        ] {
            writeln!(
                f,
                "  {role}: {} structure nodes ({} nodes)",
                self.structure_nodes_with(role),
                self.nodes_with(role)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyngraph::DynamicNetwork;

    fn analyze(g: &DynamicNetwork, a: u32, b: u32, h: u32) -> RoleAnalysis {
        let hop = HopSubgraph::extract(g, a, b, h);
        let s = StructureSubgraph::combine(&hop);
        RoleAnalysis::analyze(&hop, &s)
    }

    /// a(0) and b(1) share neighbor 2; fans 3,4 on a; fan 5 on b;
    /// periphery 6 behind 2.
    fn sample() -> DynamicNetwork {
        [
            (0, 2, 1),
            (1, 2, 1),
            (0, 3, 1),
            (0, 4, 1),
            (1, 5, 1),
            (2, 6, 1),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn roles_classified() {
        let g = sample();
        let ra = analyze(&g, 0, 1, 2);
        assert_eq!(ra.role(0), NodeRole::Endpoint);
        assert_eq!(ra.role(1), NodeRole::Endpoint);
        assert_eq!(ra.structure_nodes_with(NodeRole::CommonNeighbor), 1);
        // fans 3,4 merge into one SatelliteA structure node of 2 members.
        assert_eq!(ra.structure_nodes_with(NodeRole::SatelliteA), 1);
        assert_eq!(ra.nodes_with(NodeRole::SatelliteA), 2);
        assert_eq!(ra.structure_nodes_with(NodeRole::SatelliteB), 1);
        assert_eq!(ra.structure_nodes_with(NodeRole::Periphery), 1);
    }

    #[test]
    fn aggregation_ratio_reflects_merging() {
        let g = sample();
        let ra = analyze(&g, 0, 1, 2);
        // 7 hop nodes in 6 structure nodes.
        assert!((ra.aggregation_ratio() - 7.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn celebrity_fans_aggregate_strongly() {
        let mut g: DynamicNetwork =
            [(0, 2, 1), (1, 2, 1)].into_iter().collect();
        for fan in 3..23 {
            g.add_link(0, fan, 1);
        }
        let ra = analyze(&g, 0, 1, 1);
        assert_eq!(ra.structure_nodes_with(NodeRole::SatelliteA), 1);
        assert_eq!(ra.nodes_with(NodeRole::SatelliteA), 20);
        assert!(ra.aggregation_ratio() > 4.0);
    }

    #[test]
    fn display_mentions_every_role() {
        let g = sample();
        let text = analyze(&g, 0, 1, 2).to_string();
        for needle in [
            "common neighbor",
            "satellite of a",
            "periphery",
            "aggregation",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in {text}");
        }
    }
}
