//! The Palette-WL ordering (Algorithm 2 of the paper, after Zhang & Chen,
//! KDD'17).
//!
//! A Weisfeiler–Lehman color refinement that assigns every structure node a
//! unique order: colors start from the distance to the target link, then are
//! iteratively refined by hashing each node's color together with its
//! neighbors' colors through prime logarithms:
//!
//! ```text
//! h(N_x) = C(N_x) + Σ_{N_p ∈ Γ(N_x)} ln P(C(N_p)) / |Σ_{N_q} ln P(C(N_q))|
//! ```
//!
//! where `P(n)` is the n-th prime. The fractional hash term is strictly less
//! than 1, so refinement only ever splits color classes ("palette"
//! property), and the two endpoints of the target link keep orders 1 and 2.
//!
//! Refinement is hash-free per round: nodes are bucketed by current color
//! with a counting sort, the neighbor-color log sums accumulate in
//! ascending-color order (bit-identical to summing each node's *sorted*
//! neighbor multiset — the addends arrive in the same sequence), and new
//! dense color ids are assigned class-locally, guarded by the palette
//! property that refinement only splits classes. If float rounding ever
//! violates that guard the round falls back to the reference global
//! ranking, so the output is bit-identical to `crate::reference` either way
//! (proven by `tests/kernels.rs`).
//!
//! Refinement runs on the structure subgraph's local adjacency, never on
//! the source graph, so the ordering is identical for every
//! [`dyngraph::GraphView`] representation upstream (mutable network, frozen
//! CSR, delta overlay) — the canonical local ids fixed at hop extraction
//! carry the determinism through.

/// Returns the first `n` primes (`P(1) = 2`).
///
/// Trial division; intended for the small `n` (≤ a few thousand) that
/// structure subgraphs produce.
pub fn first_primes(n: usize) -> Vec<u64> {
    let mut primes: Vec<u64> = Vec::with_capacity(n);
    let mut cand = 2u64;
    while primes.len() < n {
        if primes
            .iter()
            .take_while(|&&p| p * p <= cand)
            .all(|&p| !cand.is_multiple_of(p))
        {
            primes.push(cand);
        }
        cand += 1;
    }
    primes
}

/// Reusable Palette-WL buffers: the trial-division prime table with its
/// cached logarithms (the dominant per-call cost when thousands of
/// subgraphs are refined in a batch) plus every per-round working array, so
/// a warm refinement allocates only the two color vectors.
///
/// Like [`crate::HopScratch`], reuse never changes output: a fresh scratch
/// and a warm one produce bit-identical orders.
#[derive(Debug, Clone, Default)]
pub struct WlScratch {
    primes: Vec<u64>,
    /// `lnp[c - 1] = ln P(c)`, cached alongside the primes.
    lnp: Vec<f64>,
    /// Neighbor-color log-sum accumulator of the current round.
    acc: Vec<f64>,
    /// Hash values of the current refinement round.
    hash: Vec<f64>,
    /// Node ids bucketed by current color (counting sort).
    by_color: Vec<u32>,
    /// Bucket start offsets per color.
    starts: Vec<usize>,
    cursor: Vec<usize>,
}

impl WlScratch {
    fn ensure_primes(&mut self, n: usize) {
        if self.primes.len() < n {
            self.primes = first_primes(n);
            self.lnp = self.primes.iter().map(|&p| (p as f64).ln()).collect();
        }
    }
}

/// Runs Palette-WL color refinement and returns a unique 1-based order per
/// node.
///
/// * `adj` — distinct-neighbor adjacency lists.
/// * `init_key` — initial color key per node (the paper uses the distance to
///   the target link); smaller keys rank earlier.
/// * `pinned` — the `(a, b)` node indices forced to orders 1 and 2.
/// * `tiebreak` — deterministic secondary key used to break the remaining
///   ties (automorphic nodes) after refinement converges.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `adj.len()` or a pinned index
/// is out of range.
pub fn palette_wl(
    adj: &[Vec<usize>],
    init_key: &[u32],
    pinned: (usize, usize),
    tiebreak: &[u64],
) -> Vec<usize> {
    palette_wl_with_scratch(
        adj,
        init_key,
        pinned,
        tiebreak,
        &mut WlScratch::default(),
    )
}

/// [`palette_wl`] with caller-provided reusable buffers; bit-identical
/// output, amortized allocations.
///
/// # Panics
///
/// Same conditions as [`palette_wl`].
pub fn palette_wl_with_scratch(
    adj: &[Vec<usize>],
    init_key: &[u32],
    pinned: (usize, usize),
    tiebreak: &[u64],
    scratch: &mut WlScratch,
) -> Vec<usize> {
    palette_wl_csr(
        adj.len(),
        |i| adj[i].as_slice(),
        init_key,
        pinned,
        tiebreak,
        scratch,
    )
}

/// [`palette_wl_with_scratch`] over any slice-yielding adjacency accessor,
/// letting CSR-backed graphs (e.g. the structure subgraph) refine without
/// materializing `Vec<Vec<usize>>` rows.
///
/// # Panics
///
/// Same conditions as [`palette_wl`].
pub fn palette_wl_csr<'a, F>(
    n: usize,
    adj: F,
    init_key: &[u32],
    pinned: (usize, usize),
    tiebreak: &[u64],
    scratch: &mut WlScratch,
) -> Vec<usize>
where
    F: Fn(usize) -> &'a [usize],
{
    assert_eq!(init_key.len(), n, "init_key length mismatch");
    assert_eq!(tiebreak.len(), n, "tiebreak length mismatch");
    assert!(pinned.0 < n && pinned.1 < n, "pinned index out of range");
    assert_ne!(pinned.0, pinned.1, "pinned indices must differ");
    if n == 0 {
        return Vec::new();
    }

    // Initial colors: dense rank of the init key, endpoints forced lowest.
    let sort_key = |i: usize| -> (u8, u32) {
        if i == pinned.0 {
            (0, 0)
        } else if i == pinned.1 {
            (1, 0)
        } else {
            (2, init_key[i])
        }
    };
    let mut colors = dense_rank_by(n, |i, j| sort_key(i).cmp(&sort_key(j)));
    let mut new_colors = vec![0usize; n];
    let mut num_classes = colors.iter().copied().max().unwrap_or(0);

    scratch.ensure_primes(n);
    let WlScratch {
        lnp,
        acc,
        hash,
        by_color,
        starts,
        cursor,
        ..
    } = scratch;

    // Refine until stable. Each non-trivial round strictly splits at least
    // one color class, so n rounds suffice; the cap guards regressions.
    for _ in 0..n + 2 {
        // Global normalizer, summed in node-index order (the reference
        // addition sequence).
        let total: f64 = (0..n).map(|i| lnp[colors[i] - 1]).sum::<f64>().abs();
        // Bucket nodes by current color (counting sort, colors are 1-based
        // dense ids).
        starts.clear();
        starts.resize(num_classes + 2, 0);
        for &c in colors.iter() {
            starts[c + 1] += 1;
        }
        for c in 1..starts.len() {
            starts[c] += starts[c - 1];
        }
        cursor.clear();
        cursor.extend_from_slice(starts);
        by_color.resize(n, 0);
        for (i, &c) in colors.iter().enumerate() {
            by_color[cursor[c]] = i as u32;
            cursor[c] += 1;
        }
        // Neighbor log-sum accumulation in ascending-color order: for every
        // node `i`, the values landing in `acc[i]` arrive exactly as if its
        // neighbor colors had been sorted ascending and summed — equal
        // addends within one class commute bit-exactly — so `acc[i]`
        // reproduces the reference's sorted-multiset sum.
        acc.clear();
        acc.resize(n, 0.0);
        for c in 1..=num_classes {
            let lp = lnp[c - 1];
            for &j in &by_color[starts[c]..starts[c + 1]] {
                for &i in adj(j as usize) {
                    acc[i] += lp;
                }
            }
        }
        hash.clear();
        hash.extend((0..n).map(|i| colors[i] as f64 + acc[i] / total));
        // Class-local dense re-ranking. The palette property says classes
        // only split (hash = color + frac with frac ∈ [0, 1)), so ranking
        // each class's nodes independently — classes visited in ascending
        // color — concatenates into the global hash order. The boundary
        // guard verifies exactly that; float pathology falls back to the
        // reference global ranking. The pinned endpoints are singleton
        // classes 1 and 2 by construction.
        let mut fast = num_classes >= 2
            && colors[pinned.0] == 1
            && colors[pinned.1] == 2
            && starts[2] - starts[1] == 1
            && starts[3] - starts[2] == 1;
        if fast {
            new_colors[pinned.0] = 1;
            new_colors[pinned.1] = 2;
            let mut rank = 2usize;
            let mut prev: Option<f64> = None;
            for c in 3..=num_classes {
                let seg = &mut by_color[starts[c]..starts[c + 1]];
                seg.sort_unstable_by(|&x, &y| {
                    hash[x as usize].total_cmp(&hash[y as usize])
                });
                if let Some(p) = prev {
                    if hash[seg[0] as usize].total_cmp(&p)
                        != std::cmp::Ordering::Greater
                    {
                        fast = false;
                        break;
                    }
                }
                for pos in 0..seg.len() {
                    if pos == 0
                        || hash[seg[pos - 1] as usize]
                            .total_cmp(&hash[seg[pos] as usize])
                            == std::cmp::Ordering::Less
                    {
                        rank += 1;
                    }
                    new_colors[seg[pos] as usize] = rank;
                }
                prev = seg.last().map(|&i| hash[i as usize]);
            }
        }
        if !fast {
            // Reference ranking: global sort over (tier, hash).
            let hkey = |i: usize| -> (u8, f64) {
                if i == pinned.0 {
                    (0, 0.0)
                } else if i == pinned.1 {
                    (1, 0.0)
                } else {
                    (2, hash[i])
                }
            };
            new_colors = dense_rank_by(n, |i, j| {
                let (ti, hi) = hkey(i);
                let (tj, hj) = hkey(j);
                ti.cmp(&tj).then(hi.total_cmp(&hj))
            });
        }
        if new_colors == colors {
            break;
        }
        std::mem::swap(&mut colors, &mut new_colors);
        num_classes = colors.iter().copied().max().unwrap_or(0);
    }

    // Unique total order: converged color, then caller tiebreak, then index.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by_key(|&i| (colors[i], tiebreak[i], i));
    let mut order = vec![0usize; n];
    for (rank, &i) in idx.iter().enumerate() {
        order[i] = rank + 1;
    }
    order
}

/// Dense ranking (1-based): equal elements share a rank, the next distinct
/// element gets the previous rank + 1.
///
/// The result depends only on the comparator's equivalence classes and
/// order, never on sort stability: equal elements share a rank by
/// definition, so any permutation within a class yields identical ranks.
pub(crate) fn dense_rank_by(
    n: usize,
    mut cmp: impl FnMut(usize, usize) -> std::cmp::Ordering,
) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| cmp(a, b));
    let mut ranks = vec![0usize; n];
    let mut rank = 0;
    for (pos, &i) in idx.iter().enumerate() {
        if pos == 0 || cmp(idx[pos - 1], i) == std::cmp::Ordering::Less {
            rank += 1;
        }
        ranks[i] = rank;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primes_start_correctly() {
        assert_eq!(first_primes(8), vec![2, 3, 5, 7, 11, 13, 17, 19]);
        assert!(first_primes(0).is_empty());
    }

    #[test]
    fn endpoints_get_orders_one_and_two() {
        // path: 2 - 0 - 1 - 3, target (0, 1)
        let adj = vec![vec![1, 2], vec![0, 3], vec![0], vec![1]];
        let order = palette_wl(&adj, &[0, 0, 1, 1], (0, 1), &[0, 1, 2, 3]);
        assert_eq!(order[0], 1);
        assert_eq!(order[1], 2);
    }

    #[test]
    fn orders_are_a_permutation() {
        let adj =
            vec![vec![1, 2, 3], vec![0, 2], vec![0, 1, 4], vec![0], vec![2]];
        let order = palette_wl(&adj, &[0, 0, 1, 1, 2], (0, 1), &[0; 5]);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn closer_nodes_rank_earlier() {
        // star around 0 with one far node: 0-1 target, 0-2, 2-3
        let adj = vec![vec![1, 2], vec![0], vec![0, 3], vec![2]];
        let order = palette_wl(&adj, &[0, 0, 1, 2], (0, 1), &[0; 4]);
        assert!(order[2] < order[3], "distance-1 node before distance-2");
    }

    #[test]
    fn refinement_splits_same_distance_nodes_by_connectivity() {
        // target (0,1); nodes 2 and 3 both at distance 1, but 2 is adjacent
        // to both endpoints while 3 touches only endpoint 0.
        let adj = vec![
            vec![1, 2, 3], // 0: endpoint a
            vec![0, 2],    // 1: endpoint b
            vec![0, 1],    // 2: adjacent to both
            vec![0],       // 3: adjacent to a only
        ];
        let order = palette_wl(&adj, &[0, 0, 1, 1], (0, 1), &[0; 4]);
        assert_ne!(order[2], order[3]);
        // Same tiebreak, so the split must come from refinement itself:
        // re-running with swapped tiebreaks must not change the order.
        let order2 = palette_wl(&adj, &[0, 0, 1, 1], (0, 1), &[9, 9, 9, 9]);
        assert_eq!(order, order2);
    }

    #[test]
    fn automorphic_nodes_broken_by_tiebreak() {
        // 2 and 3 are perfectly symmetric pendants of endpoint 0.
        let adj = vec![vec![1, 2, 3], vec![0], vec![0], vec![0]];
        let order = palette_wl(&adj, &[0, 0, 1, 1], (0, 1), &[0, 0, 5, 1]);
        assert!(order[3] < order[2], "smaller tiebreak ranks earlier");
    }

    #[test]
    fn deterministic_across_runs() {
        let adj = vec![
            vec![1, 2, 3, 4],
            vec![0, 2],
            vec![0, 1, 3],
            vec![0, 2, 4],
            vec![0, 3],
        ];
        let a = palette_wl(&adj, &[0, 0, 1, 1, 1], (0, 1), &[0, 1, 2, 3, 4]);
        let b = palette_wl(&adj, &[0, 0, 1, 1, 1], (0, 1), &[0, 1, 2, 3, 4]);
        assert_eq!(a, b);
    }

    #[test]
    fn two_node_graph() {
        let adj = vec![vec![], vec![]];
        let order = palette_wl(&adj, &[0, 0], (0, 1), &[0, 0]);
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn warm_scratch_is_bit_identical_to_fresh() {
        let adj = vec![
            vec![1, 2, 3, 4],
            vec![0, 2],
            vec![0, 1, 3],
            vec![0, 2, 4],
            vec![0, 3],
        ];
        let mut scratch = WlScratch::default();
        // Warm on a larger graph so the reused prime table is oversized.
        let ring: Vec<Vec<usize>> =
            (0..10).map(|i| vec![(i + 1) % 10, (i + 9) % 10]).collect();
        let keys: Vec<u32> = (0..10).map(|i| i / 2).collect();
        let _ = palette_wl_with_scratch(
            &ring,
            &keys,
            (0, 1),
            &[0; 10],
            &mut scratch,
        );
        let warm = palette_wl_with_scratch(
            &adj,
            &[0, 0, 1, 1, 1],
            (0, 1),
            &[0, 1, 2, 3, 4],
            &mut scratch,
        );
        let fresh =
            palette_wl(&adj, &[0, 0, 1, 1, 1], (0, 1), &[0, 1, 2, 3, 4]);
        assert_eq!(warm, fresh);
    }

    #[test]
    fn csr_accessor_matches_vec_adjacency() {
        let adj = vec![
            vec![1, 2, 3, 4],
            vec![0, 2],
            vec![0, 1, 3],
            vec![0, 2, 4],
            vec![0, 3],
        ];
        let flat: Vec<usize> = adj.iter().flatten().copied().collect();
        let mut offsets = vec![0usize];
        for row in &adj {
            offsets.push(offsets.last().copied().unwrap_or(0) + row.len());
        }
        let mut scratch = WlScratch::default();
        let via_csr = palette_wl_csr(
            adj.len(),
            |i| &flat[offsets[i]..offsets[i + 1]],
            &[0, 0, 1, 1, 1],
            (0, 1),
            &[0, 1, 2, 3, 4],
            &mut scratch,
        );
        let via_vec =
            palette_wl(&adj, &[0, 0, 1, 1, 1], (0, 1), &[0, 1, 2, 3, 4]);
        assert_eq!(via_csr, via_vec);
    }

    #[test]
    #[should_panic(expected = "pinned indices must differ")]
    fn pinned_must_differ() {
        let adj = vec![vec![], vec![]];
        let _ = palette_wl(&adj, &[0, 0], (0, 0), &[0, 0]);
    }
}
