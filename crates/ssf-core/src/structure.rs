//! Structure combination (Definition 4–6, Algorithm 1 of the paper).
//!
//! Nodes of the h-hop subgraph that have *identical neighbor sets* play the
//! same topological role and are merged into a single *structure node*. The
//! merge is repeated on the resulting graph until no two structure nodes
//! share a neighbor set (Algorithm 1's fixpoint loop: merging can expose new
//! identical neighborhoods — e.g. two pendant nodes whose distinct anchors
//! were themselves merged). The two endpoints of the target link are always
//! kept as singleton structure nodes (Definition 4).
//!
//! This stage consumes only the re-indexed [`HopSubgraph`], so it is
//! automatically independent of the graph representation the subgraph was
//! extracted from ([`dyngraph::GraphView`] — mutable network, frozen CSR,
//! or overlay): the bit-identity of the whole pipeline across views is
//! decided at hop extraction, upstream of this module.

use std::collections::HashMap;

use dyngraph::Timestamp;

use crate::hop::HopSubgraph;

/// The h-hop *structure subgraph* `G_{S_h→e_t}` of a target link.
///
/// Structure node 0 is always the singleton `{a}` and structure node 1 the
/// singleton `{b}`. Every structure link keeps the full multiset of
/// timestamps of the underlying links (Definition 5), which the
/// [normalized influence](crate::influence) later collapses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureSubgraph {
    /// `members[x]` = sorted hop-local node ids merged into structure node `x`.
    members: Vec<Vec<usize>>,
    /// Sorted distinct structure-node neighbors.
    adj: Vec<Vec<usize>>,
    /// Timestamps of all underlying links per structure link, keyed `(x, y)`
    /// with `x < y`.
    timestamps: HashMap<(usize, usize), Vec<Timestamp>>,
    /// `dist[x]` = hop distance of structure node `x` to the target link
    /// (all members share it; kept as the minimum for safety).
    dist: Vec<u32>,
}

/// Reusable buffers for Algorithm 1's fixpoint merge: the per-group
/// neighbor-set lists rebuilt every round and the partition maps.
///
/// Like [`crate::HopScratch`], reuse never changes output: a fresh scratch
/// and a warm one produce identical structure subgraphs.
#[derive(Debug, Clone, Default)]
pub struct StructureScratch {
    group_of: Vec<usize>,
    nbrs: Vec<Vec<usize>>,
    new_of_group: Vec<usize>,
}

impl StructureSubgraph {
    /// Runs Algorithm 1 on an h-hop subgraph.
    ///
    /// # Panics
    ///
    /// Panics if `hop` has fewer than 2 nodes (no target endpoints).
    pub fn combine(hop: &HopSubgraph) -> Self {
        Self::combine_with_scratch(hop, &mut StructureScratch::default())
    }

    /// [`StructureSubgraph::combine`] with caller-provided reusable buffers;
    /// identical output, amortized allocations.
    ///
    /// # Panics
    ///
    /// Same conditions as [`StructureSubgraph::combine`].
    pub fn combine_with_scratch(
        hop: &HopSubgraph,
        scratch: &mut StructureScratch,
    ) -> Self {
        let n = hop.node_count();
        assert!(n >= 2, "hop subgraph must contain both target endpoints");

        // group_of[hop node] -> current structure node id. Start from
        // singletons and iterate Algorithm 1's merge to a fixpoint.
        let StructureScratch {
            group_of,
            nbrs,
            new_of_group,
        } = scratch;
        group_of.clear();
        group_of.extend(0..n);
        let mut group_count = n;
        loop {
            // Neighbor set of each current group, over group ids.
            if nbrs.len() < group_count {
                nbrs.resize_with(group_count, Vec::new);
            }
            for nb in nbrs[..group_count].iter_mut() {
                nb.clear();
            }
            for i in 0..n {
                let gi = group_of[i];
                for &(j, _) in hop.incident_links(i) {
                    let gj = group_of[j];
                    debug_assert_ne!(gi, gj, "structure nodes never self-link");
                    nbrs[gi].push(gj);
                }
            }
            for nb in nbrs[..group_count].iter_mut() {
                nb.sort_unstable();
                nb.dedup();
            }
            // Merge groups with identical neighbor sets. The endpoint groups
            // are pinned: they merge with nobody.
            let (ga, gb) = (group_of[0], group_of[1]);
            let mut sig_to_new: HashMap<&[usize], usize> = HashMap::new();
            new_of_group.clear();
            new_of_group.resize(group_count, usize::MAX);
            let mut next = 0;
            for (g, nb) in nbrs[..group_count].iter().enumerate() {
                if g == ga || g == gb {
                    // Endpoint groups are assigned directly, so they never
                    // share a signature with a mergeable group.
                    new_of_group[g] = next;
                    next += 1;
                    continue;
                }
                let id =
                    *sig_to_new.entry(nb.as_slice()).or_insert_with(|| {
                        let id = next;
                        next += 1;
                        id
                    });
                new_of_group[g] = id;
            }
            if next == group_count {
                break; // fixpoint: nothing merged
            }
            for g in group_of.iter_mut() {
                *g = new_of_group[*g];
            }
            group_count = next;
        }

        Self::finalize(hop, group_of, group_count)
    }

    /// Builds the final structure subgraph from a converged partition,
    /// renumbering so the endpoints are structure nodes 0 and 1 and the rest
    /// follow in (distance, smallest member) order.
    fn finalize(
        hop: &HopSubgraph,
        group_of: &[usize],
        group_count: usize,
    ) -> Self {
        let n = hop.node_count();
        let mut members_raw: Vec<Vec<usize>> = vec![Vec::new(); group_count];
        for i in 0..n {
            members_raw[group_of[i]].push(i);
        }
        // Deterministic renumbering: endpoint groups first, then by
        // (distance, smallest member id).
        let mut order: Vec<usize> = (0..group_count).collect();
        let key = |g: usize| {
            let m = &members_raw[g];
            let d =
                m.iter().map(|&i| hop.distance(i)).min().unwrap_or(u32::MAX);
            let lo = m.first().copied().unwrap_or(usize::MAX);
            (d, lo)
        };
        order.sort_by_key(|&g| key(g));
        debug_assert_eq!(members_raw[order[0]][0], 0, "endpoint a first");
        debug_assert_eq!(members_raw[order[1]][0], 1, "endpoint b second");
        let mut new_id = vec![usize::MAX; group_count];
        for (rank, &g) in order.iter().enumerate() {
            new_id[g] = rank;
        }

        let mut members = vec![Vec::new(); group_count];
        let mut dist = vec![u32::MAX; group_count];
        for (g, m) in members_raw.into_iter().enumerate() {
            let x = new_id[g];
            dist[x] =
                m.iter().map(|&i| hop.distance(i)).min().unwrap_or(u32::MAX);
            members[x] = m; // already ascending (filled in id order)
        }

        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); group_count];
        let mut timestamps: HashMap<(usize, usize), Vec<Timestamp>> =
            HashMap::new();
        for i in 0..n {
            let x = new_id[group_of[i]];
            for &(j, t) in hop.incident_links(i) {
                if i < j {
                    let y = new_id[group_of[j]];
                    let key = (x.min(y), x.max(y));
                    timestamps.entry(key).or_default().push(t);
                }
            }
        }
        for (&(x, y), ts) in &mut timestamps {
            ts.sort_unstable();
            adj[x].push(y);
            adj[y].push(x);
        }
        for a in &mut adj {
            a.sort_unstable();
        }
        StructureSubgraph {
            members,
            adj,
            timestamps,
            dist,
        }
    }

    /// Number of structure nodes `|V_S|`.
    pub fn node_count(&self) -> usize {
        self.members.len()
    }

    /// Number of structure links `|E_S|`.
    pub fn link_count(&self) -> usize {
        self.timestamps.len()
    }

    /// Sorted hop-local node ids merged into structure node `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn members(&self, x: usize) -> &[usize] {
        &self.members[x]
    }

    /// Sorted structure-node neighbors of `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn neighbors(&self, x: usize) -> &[usize] {
        &self.adj[x]
    }

    /// Hop distance of structure node `x` to the target link.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn distance(&self, x: usize) -> u32 {
        self.dist[x]
    }

    /// Sorted timestamps of all underlying links between `x` and `y`
    /// (empty if no structure link exists).
    pub fn timestamps_between(&self, x: usize, y: usize) -> &[Timestamp] {
        self.timestamps
            .get(&(x.min(y), x.max(y)))
            .map_or(&[], Vec::as_slice)
    }

    /// Iterates structure links once as `(x, y)` with `x < y`.
    pub fn links(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.timestamps.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyngraph::DynamicNetwork;

    fn structure_of(
        g: &DynamicNetwork,
        a: u32,
        b: u32,
        h: u32,
    ) -> StructureSubgraph {
        StructureSubgraph::combine(&HopSubgraph::extract(g, a, b, h))
    }

    /// Figure 3 of the paper: A has pendant fans G,H,I; B has D,E,F… the
    /// essence: pendant nodes hanging off the same anchor merge.
    #[test]
    fn pendant_fan_merges() {
        // A=0, B=1; pendants 2,3,4 on A; pendants 5,6 on B; A-C-B with C=7.
        let g: DynamicNetwork = [
            (0, 2, 1),
            (0, 3, 1),
            (0, 4, 2),
            (1, 5, 2),
            (1, 6, 3),
            (0, 7, 3),
            (1, 7, 4),
        ]
        .into_iter()
        .collect();
        let s = structure_of(&g, 0, 1, 1);
        // Structure nodes: {A}, {B}, {2,3,4}, {5,6}, {7} = 5.
        assert_eq!(s.node_count(), 5);
        let sizes: Vec<usize> = (0..5).map(|x| s.members(x).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 8);
        assert!(sizes.contains(&3)); // {2,3,4}
        assert!(sizes.contains(&2)); // {5,6}
        assert_eq!(s.members(0), &[0]);
        assert_eq!(s.members(1), &[1]);
    }

    #[test]
    fn endpoints_never_merge_even_with_twins() {
        // a and c are structural twins (both only adjacent to z), but a is an
        // endpoint and must stay singleton.
        let g: DynamicNetwork =
            [(0, 2, 1), (3, 2, 1), (1, 2, 2)].into_iter().collect();
        // target (0,1): a=0 adjacent {2}; c=3 adjacent {2}; b=1 adjacent {2}.
        let s = structure_of(&g, 0, 1, 2);
        assert_eq!(s.members(0), &[0]);
        assert_eq!(s.members(1), &[1]);
        // node 3 (some local id) stays its own structure node because its
        // only potential twins are the pinned endpoints.
        assert_eq!(s.node_count(), 4);
    }

    #[test]
    fn second_round_merge_happens() {
        // Chain pendants: p1-x, p2-y with x,y twins over {a, b}:
        //   a-x, b-x, a-y, b-y, x-p1, y-p2 — wait, then x,y have different
        // neighbor sets ({a,b,p1} vs {a,b,p2}) until p1,p2 merge, and p1,p2
        // have different sets ({x} vs {y}) until x,y merge: a genuine
        // fixpoint case needing two rounds… which strict Γ-equality can never
        // trigger in one direction. Instead test the simple realizable case:
        // u,v pendants of merged anchors.
        //   a-x, b-x, a-y, b-y (x,y twins) ; u-x, v-y.
        // Round 1: x,y do NOT merge (sets {a,b,u} vs {a,b,v}); u,v do not
        // merge ({x} vs {y}). No merge at all — the fixpoint is immediate and
        // every node is singleton. This documents that strict neighbor-set
        // equality is conservative.
        let g: DynamicNetwork = [
            (0, 2, 1),
            (1, 2, 1),
            (0, 3, 1),
            (1, 3, 1),
            (4, 2, 2),
            (5, 3, 2),
        ]
        .into_iter()
        .collect();
        let s = structure_of(&g, 0, 1, 2);
        assert_eq!(s.node_count(), 6);
    }

    #[test]
    fn cascading_merge_converges() {
        // x,y twins over {a}; pendants u on x and v on y merge only AFTER
        // x,y merge: needs the fixpoint loop.
        //   a-x, a-y, x-u, y-v, b somewhere: b-a.
        // Γx = {a,u}, Γy = {a,v}: not equal, so x,y singletons; u ({x}) and
        // v ({y}) differ too. One round: nothing merges… strict equality
        // again conservative. The genuinely cascading case is pendant fans:
        // u1,u2 on x AND v1,v2 on y with Γx=Γy impossible while pendants
        // differ. Conclusion: with strict sets the combination converges in
        // one round; we assert the loop terminates and is stable.
        let g: DynamicNetwork =
            [(0, 1, 1), (0, 2, 1), (0, 3, 1), (2, 4, 2), (3, 5, 2)]
                .into_iter()
                .collect();
        let s = structure_of(&g, 0, 1, 3);
        // Stability: re-running combination on the result's node count.
        assert!(s.node_count() <= 6);
        let total: usize =
            (0..s.node_count()).map(|x| s.members(x).len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn structure_links_aggregate_timestamps() {
        // pendants 2,3 on node 0 with different timestamps merge; their
        // structure link to {0} carries both timestamps.
        let g: DynamicNetwork =
            [(0, 2, 5), (0, 3, 9), (0, 1, 1)].into_iter().collect();
        let s = structure_of(&g, 0, 1, 1);
        // nodes: {0}, {1}, {2,3}
        assert_eq!(s.node_count(), 3);
        assert_eq!(s.timestamps_between(0, 2), &[5, 9]);
        // The 0-1 history link is the target pair: excluded by extraction.
        assert_eq!(s.timestamps_between(0, 1), &[] as &[u32]);
        assert_eq!(s.timestamps_between(1, 2), &[] as &[u32]);
    }

    #[test]
    fn multi_links_all_collected() {
        let g: DynamicNetwork = [(0, 2, 1), (0, 2, 3), (0, 2, 3), (0, 1, 1)]
            .into_iter()
            .collect();
        let s = structure_of(&g, 0, 1, 1);
        assert_eq!(s.timestamps_between(0, 2), &[1, 3, 3]);
    }

    #[test]
    fn distances_inherited_from_members() {
        let g: DynamicNetwork =
            [(0, 1, 1), (0, 2, 1), (2, 3, 1)].into_iter().collect();
        let s = structure_of(&g, 0, 1, 2);
        assert_eq!(s.distance(0), 0);
        assert_eq!(s.distance(1), 0);
        let far = (0..s.node_count())
            .find(|&x| s.members(x).iter().any(|&i| i >= 3))
            .unwrap();
        assert_eq!(s.distance(far), 2);
    }

    #[test]
    fn neighbor_lists_are_sorted_and_symmetric() {
        let g: DynamicNetwork =
            [(0, 1, 1), (0, 2, 1), (1, 2, 2), (2, 3, 3), (2, 4, 3)]
                .into_iter()
                .collect();
        let s = structure_of(&g, 0, 1, 2);
        for x in 0..s.node_count() {
            let nbrs = s.neighbors(x);
            assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
            for &y in nbrs {
                assert!(s.neighbors(y).contains(&x));
            }
        }
    }
}
