//! Structure combination (Definition 4–6, Algorithm 1 of the paper).
//!
//! Nodes of the h-hop subgraph that have *identical neighbor sets* play the
//! same topological role and are merged into a single *structure node*. The
//! merge is repeated on the resulting graph until no two structure nodes
//! share a neighbor set (Algorithm 1's fixpoint loop: merging can expose new
//! identical neighborhoods — e.g. two pendant nodes whose distinct anchors
//! were themselves merged). The two endpoints of the target link are always
//! kept as singleton structure nodes (Definition 4).
//!
//! The merge is branch-light: each round flattens every group's neighbor
//! set into one sorted, deduplicated pair list, groups equal signatures by
//! sorting group ids with a slice comparator, and assigns dense new ids per
//! run — no per-round hash maps or per-group `Vec`s. Intermediate group
//! numbering differs from the naive formulation, but signature-equality
//! classes are invariant under any bijective renumbering and
//! `finalize` renumbers canonically, so the final subgraph is bit-identical
//! to `crate::reference` (proven by `tests/kernels.rs`).
//!
//! This stage consumes only the re-indexed [`HopSubgraph`], so it is
//! automatically independent of the graph representation the subgraph was
//! extracted from ([`dyngraph::GraphView`] — mutable network, frozen CSR,
//! or overlay): the bit-identity of the whole pipeline across views is
//! decided at hop extraction, upstream of this module.

use dyngraph::Timestamp;

use crate::hop::HopSubgraph;

/// The h-hop *structure subgraph* `G_{S_h→e_t}` of a target link.
///
/// Structure node 0 is always the singleton `{a}` and structure node 1 the
/// singleton `{b}`. Every structure link keeps the full multiset of
/// timestamps of the underlying links (Definition 5), which the
/// [normalized influence](crate::influence) later collapses. All state is
/// flat CSR — members, adjacency and link timestamps are slices into shared
/// arrays, so downstream stages read contiguous memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureSubgraph {
    /// Member CSR row bounds: structure node `x` owns
    /// `mem_ids[mem_offsets[x]..mem_offsets[x + 1]]`.
    mem_offsets: Vec<usize>,
    /// Flat sorted hop-local member ids.
    mem_ids: Vec<usize>,
    /// Adjacency CSR row bounds over `adj_ids`.
    adj_offsets: Vec<usize>,
    /// Flat sorted distinct structure-node neighbors.
    adj_ids: Vec<usize>,
    /// Structure links as `(x, y)` with `x < y`, sorted ascending.
    link_keys: Vec<(usize, usize)>,
    /// Timestamp CSR row bounds: link `link_keys[e]` owns
    /// `ts[ts_offsets[e]..ts_offsets[e + 1]]` (sorted ascending).
    ts_offsets: Vec<usize>,
    /// Flat timestamps of all underlying links.
    ts: Vec<Timestamp>,
    /// `dist[x]` = hop distance of structure node `x` to the target link
    /// (all members share it; kept as the minimum for safety).
    dist: Vec<u32>,
}

/// Reusable buffers for Algorithm 1's fixpoint merge: the flattened
/// signature pair list, the per-group signature bounds and the partition
/// maps.
///
/// Like [`crate::HopScratch`], reuse never changes output: a fresh scratch
/// and a warm one produce identical structure subgraphs.
#[derive(Debug, Clone, Default)]
pub struct StructureScratch {
    group_of: Vec<usize>,
    /// Flattened `(group, neighbor group)` signature entries, sorted and
    /// deduplicated each round.
    pairs: Vec<(u32, u32)>,
    /// `pairs[sig_off[g]..sig_off[g + 1]]` is group `g`'s neighbor set.
    sig_off: Vec<usize>,
    /// Non-endpoint group ids ordered by signature for run detection.
    order: Vec<u32>,
    /// Counting-sorted neighbor-group ids, one row per group.
    flat: Vec<u32>,
    new_of_group: Vec<usize>,
    /// Per-link `(x, y, t)` triples accumulated during finalize.
    triples: Vec<(u32, u32, Timestamp)>,
    cursor: Vec<usize>,
}

impl StructureSubgraph {
    /// Runs Algorithm 1 on an h-hop subgraph.
    ///
    /// # Panics
    ///
    /// Panics if `hop` has fewer than 2 nodes (no target endpoints).
    pub fn combine(hop: &HopSubgraph) -> Self {
        Self::combine_with_scratch(hop, &mut StructureScratch::default())
    }

    /// [`StructureSubgraph::combine`] with caller-provided reusable buffers;
    /// identical output, amortized allocations.
    ///
    /// # Panics
    ///
    /// Same conditions as [`StructureSubgraph::combine`].
    pub fn combine_with_scratch(
        hop: &HopSubgraph,
        scratch: &mut StructureScratch,
    ) -> Self {
        let n = hop.node_count();
        assert!(n >= 2, "hop subgraph must contain both target endpoints");

        // group_of[hop node] -> current structure node id. Start from
        // singletons and iterate Algorithm 1's merge to a fixpoint.
        let StructureScratch {
            group_of,
            pairs,
            sig_off,
            order,
            flat,
            new_of_group,
            ..
        } = scratch;
        group_of.clear();
        group_of.extend(0..n);
        let mut group_count = n;
        let mut round = 0usize;
        loop {
            round += 1;
            let merged = if round == 1 {
                // Singleton round: a node's neighbor set over singleton
                // group ids IS the hop subgraph's sorted distinct-neighbor
                // CSR row — no per-round signature build at all.
                merge_round(
                    group_count,
                    (0, 1),
                    |g| hop.neighbors(g),
                    order,
                    new_of_group,
                )
            } else {
                // Later rounds: flatten every group's neighbor set into one
                // (group, neighbor-group) pair list, grouped by a counting
                // sort on the owning group and sorted + deduplicated per
                // row — rows are small, so this beats one global sort.
                pairs.clear();
                for i in 0..n {
                    let gi = group_of[i] as u32;
                    for &(j, _) in hop.incident_links(i) {
                        let gj = group_of[j as usize] as u32;
                        debug_assert_ne!(
                            gi, gj,
                            "structure nodes never self-link"
                        );
                        pairs.push((gi, gj));
                    }
                }
                sig_off.clear();
                sig_off.resize(group_count + 1, 0);
                for &(gi, _) in pairs.iter() {
                    sig_off[gi as usize + 1] += 1;
                }
                for g in 0..group_count {
                    sig_off[g + 1] += sig_off[g];
                }
                // Bucket placement, reusing new_of_group as the cursor (it
                // is rebuilt from scratch by merge_round below).
                new_of_group.clear();
                new_of_group.extend_from_slice(&sig_off[..group_count]);
                flat.clear();
                flat.resize(pairs.len(), 0);
                for &(gi, gj) in pairs.iter() {
                    flat[new_of_group[gi as usize]] = gj;
                    new_of_group[gi as usize] += 1;
                }
                // Sort + dedup each group's row, compacting in place.
                let mut w = 0usize;
                let mut start = 0usize;
                for g in 0..group_count {
                    let end = sig_off[g + 1];
                    let row = &mut flat[start..end];
                    row.sort_unstable();
                    let row_start = w;
                    let mut prev = u32::MAX;
                    for idx in start..end {
                        let v = flat[idx];
                        if v != prev {
                            flat[w] = v;
                            w += 1;
                            prev = v;
                        }
                    }
                    start = end;
                    sig_off[g] = row_start;
                }
                sig_off[group_count] = w;
                // sig_off now holds compacted row starts (shifted in the
                // loop above: sig_off[g] = start of row g).
                let (ga, gb) = (group_of[0], group_of[1]);
                merge_round(
                    group_count,
                    (ga, gb),
                    |g| &flat[sig_off[g]..sig_off[g + 1]],
                    order,
                    new_of_group,
                )
            };
            let Some(next) = merged else {
                break; // fixpoint: nothing merged
            };
            for g in group_of.iter_mut() {
                *g = new_of_group[*g];
            }
            group_count = next;
        }

        Self::finalize(hop, scratch, group_count)
    }

    /// Builds the final structure subgraph from a converged partition,
    /// renumbering so the endpoints are structure nodes 0 and 1 and the rest
    /// follow in (distance, smallest member) order. This canonical
    /// renumbering is what makes the intermediate group ids (which differ
    /// from the naive first-occurrence numbering) output-invisible.
    fn finalize(
        hop: &HopSubgraph,
        scratch: &mut StructureScratch,
        group_count: usize,
    ) -> Self {
        let StructureScratch {
            group_of,
            pairs,
            order,
            new_of_group,
            triples,
            cursor,
            ..
        } = scratch;
        let n = hop.node_count();
        // Member CSR via counting sort: hop ids ascend within each group.
        let mut mem_offsets = vec![0usize; group_count + 1];
        for &g in group_of.iter() {
            mem_offsets[g + 1] += 1;
        }
        for g in 0..group_count {
            mem_offsets[g + 1] += mem_offsets[g];
        }
        cursor.clear();
        cursor.extend_from_slice(&mem_offsets[..group_count]);
        let mut mem_ids = vec![0usize; n];
        for (i, &g) in group_of.iter().enumerate() {
            mem_ids[cursor[g]] = i;
            cursor[g] += 1;
        }
        // Deterministic renumbering: endpoint groups first, then by
        // (distance, smallest member id). Hop-local ids beyond the two
        // endpoints are sorted by (distance, global id), so distance is
        // monotone in local id and each group's first (smallest) member
        // carries its minimum distance — the key is O(1) per group, unique
        // via the first-member component. Keys are staged in the `pairs`
        // buffer so the sort never re-derives them.
        let keys = pairs;
        keys.clear();
        keys.extend((0..group_count).map(|g| {
            let first = mem_ids[mem_offsets[g]];
            (hop.distance(first), first as u32)
        }));
        order.clear();
        order.extend(0..group_count as u32);
        order.sort_unstable_by_key(|&g| keys[g as usize]);
        debug_assert_eq!(
            mem_ids[mem_offsets[order[0] as usize]], 0,
            "endpoint a first"
        );
        debug_assert_eq!(
            mem_ids[mem_offsets[order[1] as usize]], 1,
            "endpoint b second"
        );
        let new_id = new_of_group;
        new_id.clear();
        new_id.resize(group_count, usize::MAX);
        for (rank, &g) in order.iter().enumerate() {
            new_id[g as usize] = rank;
        }

        // Re-lay the member CSR in final rank order and record distances.
        let mut out_mem_offsets = Vec::with_capacity(group_count + 1);
        let mut out_mem_ids = Vec::with_capacity(n);
        let mut dist = vec![u32::MAX; group_count];
        out_mem_offsets.push(0);
        for &g in order.iter() {
            let m =
                &mem_ids[mem_offsets[g as usize]..mem_offsets[g as usize + 1]];
            out_mem_ids.extend_from_slice(m);
            out_mem_offsets.push(out_mem_ids.len());
        }
        for x in 0..group_count {
            // Partition rows are non-empty and their first member is the
            // group minimum, which carries the minimum distance (see the
            // renumbering key above).
            dist[x] = hop.distance(out_mem_ids[out_mem_offsets[x]]);
        }

        // Structure links: every underlying hop link becomes a timestamped
        // (x, y) triple, grouped per link with ascending timestamps. The
        // triples are bucketed by leading slot `x` with a counting pass over
        // the incidence CSR, then each (small) row is sorted by (y, t) —
        // the same total order a global sort would produce.
        cursor.clear();
        cursor.resize(group_count + 1, 0);
        for i in 0..n {
            let x = new_id[group_of[i]];
            for &(j, _) in hop.incident_links(i) {
                if i < j as usize {
                    let y = new_id[group_of[j as usize]];
                    cursor[x.min(y) + 1] += 1;
                }
            }
        }
        for g in 0..group_count {
            cursor[g + 1] += cursor[g];
        }
        triples.clear();
        triples.resize(cursor[group_count], (0, 0, 0));
        for i in 0..n {
            let x = new_id[group_of[i]];
            for &(j, t) in hop.incident_links(i) {
                if i < j as usize {
                    let y = new_id[group_of[j as usize]];
                    let lo = x.min(y);
                    triples[cursor[lo]] = (lo as u32, x.max(y) as u32, t);
                    cursor[lo] += 1;
                }
            }
        }
        // cursor[g] now bounds the end of row g (and the start of row g+1
        // was its pre-pass value, i.e. cursor[g - 1] after the fill).
        let mut row_start = 0;
        for g in 0..group_count {
            triples[row_start..cursor[g]].sort_unstable();
            row_start = cursor[g];
        }
        let mut link_keys = Vec::new();
        let mut ts_offsets = Vec::new();
        let mut ts = Vec::with_capacity(triples.len());
        for &(x, y, t) in triples.iter() {
            let key = (x as usize, y as usize);
            if link_keys.last() != Some(&key) {
                link_keys.push(key);
                ts_offsets.push(ts.len());
            }
            ts.push(t);
        }
        ts_offsets.push(ts.len());
        // Adjacency CSR from the distinct link keys, mirrored and
        // counting-sorted into rows. Keys ascend by (x, y), so node g's row
        // receives its smaller neighbors first (from keys (x, g), ascending
        // in x, all processed before any (g, y)) and then its larger
        // neighbors ascending in y — each row is born sorted.
        let mut adj_offsets = vec![0usize; group_count + 1];
        for &(x, y) in &link_keys {
            adj_offsets[x + 1] += 1;
            adj_offsets[y + 1] += 1;
        }
        for g in 0..group_count {
            adj_offsets[g + 1] += adj_offsets[g];
        }
        cursor.clear();
        cursor.extend_from_slice(&adj_offsets[..group_count]);
        let mut adj_ids = vec![0usize; 2 * link_keys.len()];
        for &(x, y) in &link_keys {
            adj_ids[cursor[x]] = y;
            cursor[x] += 1;
            adj_ids[cursor[y]] = x;
            cursor[y] += 1;
        }
        debug_assert!((0..group_count).all(|g| {
            adj_ids[adj_offsets[g]..adj_offsets[g + 1]]
                .windows(2)
                .all(|w| w[0] < w[1])
        }));
        StructureSubgraph {
            mem_offsets: out_mem_offsets,
            mem_ids: out_mem_ids,
            adj_offsets,
            adj_ids,
            link_keys,
            ts_offsets,
            ts,
            dist,
        }
    }

    /// Number of structure nodes `|V_S|`.
    pub fn node_count(&self) -> usize {
        self.dist.len()
    }

    /// Number of structure links `|E_S|`.
    pub fn link_count(&self) -> usize {
        self.link_keys.len()
    }

    /// Sorted hop-local node ids merged into structure node `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn members(&self, x: usize) -> &[usize] {
        &self.mem_ids[self.mem_offsets[x]..self.mem_offsets[x + 1]]
    }

    /// Sorted structure-node neighbors of `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn neighbors(&self, x: usize) -> &[usize] {
        &self.adj_ids[self.adj_offsets[x]..self.adj_offsets[x + 1]]
    }

    /// Hop distance of structure node `x` to the target link.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn distance(&self, x: usize) -> u32 {
        self.dist[x]
    }

    /// Sorted timestamps of all underlying links between `x` and `y`
    /// (empty if no structure link exists).
    pub fn timestamps_between(&self, x: usize, y: usize) -> &[Timestamp] {
        let key = (x.min(y), x.max(y));
        match self.link_keys.binary_search(&key) {
            Ok(e) => &self.ts[self.ts_offsets[e]..self.ts_offsets[e + 1]],
            Err(_) => &[],
        }
    }

    /// Iterates structure links once as `(x, y)` with `x < y`, in ascending
    /// order.
    pub fn links(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.link_keys.iter().copied()
    }
}

/// One merge round of Algorithm 1: groups whose signature slices compare
/// equal collapse to one new id (endpoints pinned to ids 0 and 1), filling
/// `new_of_group`. Returns the new group count, or `None` at the fixpoint.
///
/// Only signature *equality* affects the partition, so any total order over
/// signatures works for run detection; the resulting intermediate numbering
/// is one bijection among many, made canonical by `finalize`.
fn merge_round<'a, T, F>(
    group_count: usize,
    pinned: (usize, usize),
    sig: F,
    order: &mut Vec<u32>,
    new_of_group: &mut Vec<usize>,
) -> Option<usize>
where
    T: Ord + 'a,
    F: Fn(usize) -> &'a [T],
{
    let (ga, gb) = pinned;
    order.clear();
    order.extend(
        (0..group_count as u32)
            .filter(|&g| g as usize != ga && g as usize != gb),
    );
    order.sort_unstable_by(|&x, &y| {
        sig(x as usize).cmp(sig(y as usize)).then(x.cmp(&y))
    });
    new_of_group.clear();
    new_of_group.resize(group_count, usize::MAX);
    new_of_group[ga] = 0;
    new_of_group[gb] = 1;
    let mut next = 2;
    let mut r = 0;
    while r < order.len() {
        let mut e = r + 1;
        while e < order.len()
            && sig(order[r] as usize) == sig(order[e] as usize)
        {
            e += 1;
        }
        for &g in &order[r..e] {
            new_of_group[g as usize] = next;
        }
        next += 1;
        r = e;
    }
    if next == group_count {
        None // fixpoint: nothing merged
    } else {
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyngraph::DynamicNetwork;

    fn structure_of(
        g: &DynamicNetwork,
        a: u32,
        b: u32,
        h: u32,
    ) -> StructureSubgraph {
        StructureSubgraph::combine(&HopSubgraph::extract(g, a, b, h))
    }

    /// Figure 3 of the paper: A has pendant fans G,H,I; B has D,E,F… the
    /// essence: pendant nodes hanging off the same anchor merge.
    #[test]
    fn pendant_fan_merges() {
        // A=0, B=1; pendants 2,3,4 on A; pendants 5,6 on B; A-C-B with C=7.
        let g: DynamicNetwork = [
            (0, 2, 1),
            (0, 3, 1),
            (0, 4, 2),
            (1, 5, 2),
            (1, 6, 3),
            (0, 7, 3),
            (1, 7, 4),
        ]
        .into_iter()
        .collect();
        let s = structure_of(&g, 0, 1, 1);
        // Structure nodes: {A}, {B}, {2,3,4}, {5,6}, {7} = 5.
        assert_eq!(s.node_count(), 5);
        let sizes: Vec<usize> = (0..5).map(|x| s.members(x).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 8);
        assert!(sizes.contains(&3)); // {2,3,4}
        assert!(sizes.contains(&2)); // {5,6}
        assert_eq!(s.members(0), &[0]);
        assert_eq!(s.members(1), &[1]);
    }

    #[test]
    fn endpoints_never_merge_even_with_twins() {
        // a and c are structural twins (both only adjacent to z), but a is an
        // endpoint and must stay singleton.
        let g: DynamicNetwork =
            [(0, 2, 1), (3, 2, 1), (1, 2, 2)].into_iter().collect();
        // target (0,1): a=0 adjacent {2}; c=3 adjacent {2}; b=1 adjacent {2}.
        let s = structure_of(&g, 0, 1, 2);
        assert_eq!(s.members(0), &[0]);
        assert_eq!(s.members(1), &[1]);
        // node 3 (some local id) stays its own structure node because its
        // only potential twins are the pinned endpoints.
        assert_eq!(s.node_count(), 4);
    }

    #[test]
    fn second_round_merge_happens() {
        // Chain pendants: p1-x, p2-y with x,y twins over {a, b}:
        //   a-x, b-x, a-y, b-y, x-p1, y-p2 — wait, then x,y have different
        // neighbor sets ({a,b,p1} vs {a,b,p2}) until p1,p2 merge, and p1,p2
        // have different sets ({x} vs {y}) until x,y merge: a genuine
        // fixpoint case needing two rounds… which strict Γ-equality can never
        // trigger in one direction. Instead test the simple realizable case:
        // u,v pendants of merged anchors.
        //   a-x, b-x, a-y, b-y (x,y twins) ; u-x, v-y.
        // Round 1: x,y do NOT merge (sets {a,b,u} vs {a,b,v}); u,v do not
        // merge ({x} vs {y}). No merge at all — the fixpoint is immediate and
        // every node is singleton. This documents that strict neighbor-set
        // equality is conservative.
        let g: DynamicNetwork = [
            (0, 2, 1),
            (1, 2, 1),
            (0, 3, 1),
            (1, 3, 1),
            (4, 2, 2),
            (5, 3, 2),
        ]
        .into_iter()
        .collect();
        let s = structure_of(&g, 0, 1, 2);
        assert_eq!(s.node_count(), 6);
    }

    #[test]
    fn cascading_merge_converges() {
        // x,y twins over {a}; pendants u on x and v on y merge only AFTER
        // x,y merge: needs the fixpoint loop.
        //   a-x, a-y, x-u, y-v, b somewhere: b-a.
        // Γx = {a,u}, Γy = {a,v}: not equal, so x,y singletons; u ({x}) and
        // v ({y}) differ too. One round: nothing merges… strict equality
        // again conservative. The genuinely cascading case is pendant fans:
        // u1,u2 on x AND v1,v2 on y with Γx=Γy impossible while pendants
        // differ. Conclusion: with strict sets the combination converges in
        // one round; we assert the loop terminates and is stable.
        let g: DynamicNetwork =
            [(0, 1, 1), (0, 2, 1), (0, 3, 1), (2, 4, 2), (3, 5, 2)]
                .into_iter()
                .collect();
        let s = structure_of(&g, 0, 1, 3);
        // Stability: re-running combination on the result's node count.
        assert!(s.node_count() <= 6);
        let total: usize =
            (0..s.node_count()).map(|x| s.members(x).len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn structure_links_aggregate_timestamps() {
        // pendants 2,3 on node 0 with different timestamps merge; their
        // structure link to {0} carries both timestamps.
        let g: DynamicNetwork =
            [(0, 2, 5), (0, 3, 9), (0, 1, 1)].into_iter().collect();
        let s = structure_of(&g, 0, 1, 1);
        // nodes: {0}, {1}, {2,3}
        assert_eq!(s.node_count(), 3);
        assert_eq!(s.timestamps_between(0, 2), &[5, 9]);
        // The 0-1 history link is the target pair: excluded by extraction.
        assert_eq!(s.timestamps_between(0, 1), &[] as &[u32]);
        assert_eq!(s.timestamps_between(1, 2), &[] as &[u32]);
    }

    #[test]
    fn multi_links_all_collected() {
        let g: DynamicNetwork = [(0, 2, 1), (0, 2, 3), (0, 2, 3), (0, 1, 1)]
            .into_iter()
            .collect();
        let s = structure_of(&g, 0, 1, 1);
        assert_eq!(s.timestamps_between(0, 2), &[1, 3, 3]);
    }

    #[test]
    fn distances_inherited_from_members() {
        let g: DynamicNetwork =
            [(0, 1, 1), (0, 2, 1), (2, 3, 1)].into_iter().collect();
        let s = structure_of(&g, 0, 1, 2);
        assert_eq!(s.distance(0), 0);
        assert_eq!(s.distance(1), 0);
        let far = (0..s.node_count())
            .find(|&x| s.members(x).iter().any(|&i| i >= 3))
            .unwrap();
        assert_eq!(s.distance(far), 2);
    }

    #[test]
    fn neighbor_lists_are_sorted_and_symmetric() {
        let g: DynamicNetwork =
            [(0, 1, 1), (0, 2, 1), (1, 2, 2), (2, 3, 3), (2, 4, 3)]
                .into_iter()
                .collect();
        let s = structure_of(&g, 0, 1, 2);
        for x in 0..s.node_count() {
            let nbrs = s.neighbors(x);
            assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
            for &y in nbrs {
                assert!(s.neighbors(y).contains(&x));
            }
        }
    }

    #[test]
    fn links_iterate_sorted_with_x_less_than_y() {
        let g: DynamicNetwork = [(0, 2, 1), (2, 3, 2), (1, 3, 3), (0, 1, 4)]
            .into_iter()
            .collect();
        let s = structure_of(&g, 0, 1, 2);
        let links: Vec<_> = s.links().collect();
        assert!(links.windows(2).all(|w| w[0] < w[1]));
        assert!(links.iter().all(|&(x, y)| x < y));
        assert_eq!(links.len(), s.link_count());
    }
}
