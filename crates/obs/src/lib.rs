//! Pipeline observability for the SSF serving system — hand-rolled, since
//! this workspace vendors everything offline.
//!
//! Three layers:
//!
//! 1. **Primitives** ([`metrics`]) — lock-free [`Counter`]s and [`Gauge`]s,
//!    fixed-bucket latency [`Histogram`]s with p50/p95/p99 summaries and an
//!    associative, commutative `merge`.
//! 2. **Registry** ([`registry`]) — a process-wide store of labeled metric
//!    families with a point-in-time [`Snapshot`] and a stable JSON export
//!    (`ssf.metrics.v1`, golden-tested).
//! 3. **Recording facade** ([`recorder`]) — the [`Recorder`] trait hot code
//!    emits through, the inert [`NoopRecorder`], the registry-backed
//!    [`RegistryRecorder`], and the cheap [`ObsHandle`] threaded through
//!    the extraction, fit and serving layers. Span timers are drop guards:
//!    `let _s = obs.span("ssf.core.ball");`.
//!
//! # Naming convention
//!
//! Metric names follow `ssf.<layer>.<stage>`: `ssf.core.*` for extraction
//! stages, `ssf.ml.*` for model fitting, `ssf.model.*` for the packaged
//! predictor, `ssf.methods.*` for the batch evaluation paths,
//! `ssf.stream.*` for the online predictor and `ssf.cli.*` for command
//! entry points. Label-carrying families render as `family{k=v}` via
//! [`labeled`].
//!
//! # Invariants the test layer locks down
//!
//! * The no-op path is bit-identical to the recording path (recording
//!   never touches data values).
//! * Span enters and exits balance ([`SPANS_ENTERED`] == [`SPANS_EXITED`]
//!   once all guards have dropped).
//! * A histogram's `count` equals the sum of its bucket counts.
//! * Counter snapshots are monotone under concurrent increments.
//!
//! # Example
//!
//! ```rust
//! use std::sync::Arc;
//! use obs::{ObsHandle, Registry};
//!
//! let registry = Arc::new(Registry::new());
//! let obs = ObsHandle::of_registry(Arc::clone(&registry));
//! {
//!     let _span = obs.span("ssf.demo.stage");
//!     obs.counter("ssf.demo.items", 3);
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("ssf.demo.items"), 3);
//! assert_eq!(snap.histogram("ssf.demo.stage").map(|h| h.count()), Some(1));
//! assert!(snap.to_json().contains("\"schema\": \"ssf.metrics.v1\""));
//! ```

pub mod metrics;
pub mod recorder;
pub mod registry;

pub use metrics::{
    AtomicHistogram, Counter, Gauge, Histogram, BUCKETS, BUCKET_BOUNDS_NS,
};
pub use recorder::{
    NoopRecorder, ObsHandle, Recorder, RegistryRecorder, SpanGuard,
    SPANS_ENTERED, SPANS_EXITED,
};
pub use registry::{labeled, Registry, Snapshot};
