//! The recording facade the pipeline layers talk to.
//!
//! Hot code never holds a [`Registry`] directly; it holds an [`ObsHandle`]
//! and emits through the [`Recorder`] trait. The default handle is the
//! no-op: every method is an empty inlineable call behind a `None` check,
//! so a disabled pipeline performs no clock reads, no allocation and no
//! atomic traffic — and, by construction, recording can never change a
//! computed value (the `tests/observability.rs` bit-identity tests pin
//! this end to end).

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use crate::registry::{Registry, Snapshot};

/// A sink for telemetry events.
///
/// All methods default to no-ops so sinks only override what they store;
/// [`NoopRecorder`] is the all-defaults implementation.
pub trait Recorder: Send + Sync {
    /// Adds `delta` to the counter named `name`.
    fn counter_add(&self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets the gauge named `name`.
    fn gauge_set(&self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Records one duration sample into the histogram named `name`.
    fn observe_ns(&self, name: &str, nanos: u64) {
        let _ = (name, nanos);
    }

    /// Marks the start of a span (called by [`ObsHandle::span`]).
    fn span_enter(&self, name: &str) {
        let _ = name;
    }

    /// Marks the end of a span with its duration.
    fn span_exit(&self, name: &str, nanos: u64) {
        let _ = (name, nanos);
    }

    /// A point-in-time snapshot of everything this sink has stored.
    fn snapshot(&self) -> Snapshot {
        Snapshot::default()
    }
}

/// The all-defaults [`Recorder`]: stores nothing, returns empty snapshots.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Counter of spans entered, maintained by [`RegistryRecorder`]. Together
/// with [`SPANS_EXITED`] it makes span-nesting balance an observable
/// invariant: after every guard has dropped, the two counters are equal.
pub const SPANS_ENTERED: &str = "obs.spans.entered";
/// Counter of spans exited (see [`SPANS_ENTERED`]).
pub const SPANS_EXITED: &str = "obs.spans.exited";

/// A [`Recorder`] backed by a shared [`Registry`]: counters and gauges map
/// one-to-one, span exits land in the histogram of the span's name.
#[derive(Debug, Clone)]
pub struct RegistryRecorder {
    registry: Arc<Registry>,
}

impl RegistryRecorder {
    /// A recorder writing into `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        RegistryRecorder { registry }
    }

    /// The backing registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}

impl Recorder for RegistryRecorder {
    fn counter_add(&self, name: &str, delta: u64) {
        self.registry.counter(name).add(delta);
    }

    fn gauge_set(&self, name: &str, value: f64) {
        self.registry.gauge(name).set(value);
    }

    fn observe_ns(&self, name: &str, nanos: u64) {
        self.registry.histogram(name).record(nanos);
    }

    fn span_enter(&self, name: &str) {
        let _ = name;
        self.registry.counter(SPANS_ENTERED).incr();
    }

    fn span_exit(&self, name: &str, nanos: u64) {
        self.registry.counter(SPANS_EXITED).incr();
        self.registry.histogram(name).record(nanos);
    }

    fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

/// A cheap, cloneable handle to a recorder — the type the pipeline layers
/// store and thread around. The default/no-op handle carries no recorder
/// at all, so every emit short-circuits on one `Option` check.
#[derive(Clone, Default)]
pub struct ObsHandle {
    rec: Option<Arc<dyn Recorder>>,
}

impl fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObsHandle")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl ObsHandle {
    /// The disabled handle: records nothing, costs nothing.
    pub fn noop() -> Self {
        ObsHandle::default()
    }

    /// A handle emitting into an arbitrary recorder.
    pub fn new(rec: Arc<dyn Recorder>) -> Self {
        ObsHandle { rec: Some(rec) }
    }

    /// A handle emitting into `registry` via a [`RegistryRecorder`].
    pub fn of_registry(registry: Arc<Registry>) -> Self {
        ObsHandle::new(Arc::new(RegistryRecorder::new(registry)))
    }

    /// `true` when emits reach a recorder.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.rec.is_some()
    }

    /// Adds `delta` to counter `name`.
    #[inline]
    pub fn counter(&self, name: &str, delta: u64) {
        if let Some(rec) = &self.rec {
            rec.counter_add(name, delta);
        }
    }

    /// Sets gauge `name`.
    #[inline]
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(rec) = &self.rec {
            rec.gauge_set(name, value);
        }
    }

    /// Records a duration sample into histogram `name`.
    #[inline]
    pub fn observe_ns(&self, name: &str, nanos: u64) {
        if let Some(rec) = &self.rec {
            rec.observe_ns(name, nanos);
        }
    }

    /// Opens a timed span; the returned guard records the elapsed time
    /// into the histogram named `name` when dropped. On the no-op handle
    /// the guard is inert and no clock is read.
    ///
    /// The guard owns its recorder reference, so it outlives any borrow
    /// of the handle — callers can keep mutating the structure the handle
    /// lives in while the span is open.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        match &self.rec {
            None => SpanGuard { active: None },
            Some(rec) => {
                rec.span_enter(name);
                SpanGuard {
                    active: Some((Arc::clone(rec), name, Instant::now())),
                }
            }
        }
    }

    /// Snapshot of the underlying recorder (empty for the no-op handle).
    pub fn snapshot(&self) -> Snapshot {
        self.rec
            .as_ref()
            .map_or_else(Snapshot::default, |r| r.snapshot())
    }
}

/// Guard returned by [`ObsHandle::span`]; records on drop.
#[must_use = "a span measures nothing unless it is held until the end of \
              the timed region"]
pub struct SpanGuard {
    active: Option<(Arc<dyn Recorder>, &'static str, Instant)>,
}

impl SpanGuard {
    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((rec, name, start)) = self.active.take() {
            let nanos =
                u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            rec.span_exit(name, nanos);
        }
    }
}

impl fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanGuard")
            .field("active", &self.active.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_is_inert() {
        let h = ObsHandle::noop();
        assert!(!h.enabled());
        h.counter("c", 1);
        h.gauge("g", 1.0);
        h.observe_ns("h", 5);
        h.span("s").finish();
        assert!(h.snapshot().is_empty());
    }

    #[test]
    fn registry_handle_records_everything() {
        let reg = Arc::new(Registry::new());
        let h = ObsHandle::of_registry(Arc::clone(&reg));
        assert!(h.enabled());
        h.counter("c", 2);
        h.gauge("g", 0.5);
        h.observe_ns("lat", 3_000);
        {
            let _outer = h.span("outer");
            let _inner = h.span("inner");
        }
        let s = reg.snapshot();
        assert_eq!(s.counter("c"), 2);
        assert_eq!(s.gauge("g"), 0.5);
        assert_eq!(s.histogram("lat").map(|h| h.count()), Some(1));
        assert_eq!(s.counter(SPANS_ENTERED), 2);
        assert_eq!(s.counter(SPANS_EXITED), 2);
        assert_eq!(s.histogram("outer").map(|h| h.count()), Some(1));
        assert_eq!(s.histogram("inner").map(|h| h.count()), Some(1));
    }

    #[test]
    fn span_guard_survives_handle_drop() {
        let reg = Arc::new(Registry::new());
        let guard = {
            let h = ObsHandle::of_registry(Arc::clone(&reg));
            h.span("detached")
        };
        drop(guard);
        assert_eq!(
            reg.snapshot().histogram("detached").map(|h| h.count()),
            Some(1)
        );
    }
}
