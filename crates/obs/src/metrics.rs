//! The three metric primitives: monotone counters, last-value gauges and
//! fixed-bucket latency histograms.
//!
//! Counters and gauges are lock-free atomics so the hot layers can record
//! from any thread without coordination. Histograms come in two forms:
//! [`AtomicHistogram`] (the registry-internal, concurrently-writable form)
//! and [`Histogram`] (a plain value type used in snapshots, with a `merge`
//! that is associative and commutative — the property tests pin this).

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// Snapshots taken while other threads increment are always *some* value
/// the counter passed through: reads and writes are single atomic ops, so
/// observed values are monotone over time.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding one `f64`.
#[derive(Debug, Default)]
pub struct Gauge {
    /// The value's IEEE-754 bit pattern (atomics hold integers only).
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge starting at `0.0`.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Replaces the gauge value.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Upper bounds (inclusive, in nanoseconds) of the fixed histogram
/// buckets: 1 µs doubling up to ~8.6 s, plus an implicit overflow bucket.
///
/// The bounds are part of the frozen snapshot schema: they never change
/// between versions, which is what makes [`Histogram::merge`] total and
/// downstream dashboards stable.
pub const BUCKET_BOUNDS_NS: [u64; 24] = {
    let mut bounds = [0u64; 24];
    let mut i = 0;
    let mut b = 1_000u64; // 1 µs
    while i < 24 {
        bounds[i] = b;
        b *= 2;
        i += 1;
    }
    bounds
};

/// Number of buckets including the overflow bucket.
pub const BUCKETS: usize = BUCKET_BOUNDS_NS.len() + 1;

/// Index of the bucket a value falls into (the overflow bucket for values
/// above the last bound).
fn bucket_index(value: u64) -> usize {
    BUCKET_BOUNDS_NS
        .iter()
        .position(|&b| value <= b)
        .unwrap_or(BUCKET_BOUNDS_NS.len())
}

/// A plain, mergeable latency histogram over the fixed bucket layout.
///
/// This is the snapshot/value form: single-threaded, `Clone`/`PartialEq`,
/// with quantile summaries estimated from the bucket counts. The registry
/// records into [`AtomicHistogram`] and converts on snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample (typically a duration in nanoseconds).
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample; 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample; 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Per-bucket counts (not cumulative), overflow bucket last.
    ///
    /// Invariant (pinned by the metrics-invariant tests): the counts sum
    /// to [`Histogram::count`].
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Upper bound of bucket `i`; `None` for the overflow bucket.
    pub fn bucket_bound(i: usize) -> Option<u64> {
        BUCKET_BOUNDS_NS.get(i).copied()
    }

    /// Folds another histogram into this one.
    ///
    /// Merging is associative and commutative (bucket-wise addition), and
    /// `a.merge(b)` then querying equals recording all of `a`'s and `b`'s
    /// samples into one histogram — the property tests pin both.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Quantile estimate for `q ∈ [0, 1]`: the upper bound of the first
    /// bucket whose cumulative count reaches `⌈q·count⌉`, clamped to the
    /// observed `[min, max]` range. Monotone in `q` by construction and 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let threshold = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= threshold {
                let ub = Histogram::bucket_bound(i).unwrap_or(self.max);
                return ub.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean of the recorded samples; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The concurrently-writable histogram the registry hands to recorders.
///
/// All fields are relaxed atomics: a record is a handful of uncontended
/// atomic ops, and a snapshot taken mid-record is a valid histogram of
/// some prefix of the recorded samples.
#[derive(Debug, Default)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let h = AtomicHistogram::default();
        h.min.store(u64::MAX, Ordering::Relaxed);
        h
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time plain-histogram copy.
    pub fn snapshot(&self) -> Histogram {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        // Derive count from the bucket counts so the snapshot invariant
        // `count == Σ buckets` holds even when another thread is mid-way
        // through a record (its bucket increment may have landed while
        // its count increment has not, or vice versa).
        let count: u64 = buckets.iter().sum();
        Histogram {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_holds_last_value() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        g.set(-1.0);
        assert_eq!(g.get(), -1.0);
    }

    #[test]
    fn histogram_count_equals_bucket_sum() {
        let mut h = Histogram::new();
        for v in [0, 1, 999, 1_000, 1_001, 5_000_000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn quantiles_are_monotone_and_bracketed() {
        let mut h = Histogram::new();
        for v in [800, 1_500, 3_000, 100_000, 9_000_000] {
            h.record(v);
        }
        let (p50, p95, p99) =
            (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99);
        assert!(h.min() <= p50 && p99 <= h.max());
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn merge_equals_recording_everything() {
        let samples_a = [1u64, 2_000, 70_000];
        let samples_b = [900u64, 900, 40_000_000_000];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for &v in &samples_a {
            a.record(v);
            all.record(v);
        }
        for &v in &samples_b {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn atomic_histogram_snapshot_matches_plain() {
        let ah = AtomicHistogram::new();
        let mut h = Histogram::new();
        for v in [500u64, 12_345, 700_000_000] {
            ah.record(v);
            h.record(v);
        }
        assert_eq!(ah.snapshot(), h);
    }
}
