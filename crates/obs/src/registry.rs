//! The process-wide metric registry and its stable snapshot format.
//!
//! A [`Registry`] owns labeled metric families — counters, gauges and
//! histograms keyed by a rendered metric name — behind `RwLock`-guarded
//! maps of `Arc`-shared atomics. Lookups take a read lock; creating a
//! metric the first time takes a short write lock. Recording through an
//! already-resolved handle is lock-free.
//!
//! [`Snapshot`] is the frozen export format: every consumer (the CLI's
//! `--metrics-json`, the bench JSON, `health()`) goes through
//! [`Registry::snapshot`] and [`Snapshot::to_json`], and the golden test
//! in `tests/observability.rs` pins the JSON field names and types.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, RwLock};

use crate::metrics::{AtomicHistogram, Counter, Gauge, Histogram};

/// Renders a metric family plus labels into one canonical name:
/// `family{k1=v1,k2=v2}` with labels in the given order, or just `family`
/// when there are none. The rendered name is the registry key, so equal
/// label sets must be passed in a stable order.
pub fn labeled(family: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return family.to_string();
    }
    let mut name = String::with_capacity(family.len() + 16);
    name.push_str(family);
    name.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            name.push(',');
        }
        let _ = write!(name, "{k}={v}");
    }
    name.push('}');
    name
}

/// A process-wide registry of labeled metric families.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<AtomicHistogram>>>,
}

/// Get-or-create over one of the three maps; poisoned locks fall back to
/// a detached metric (recording proceeds, the sample is simply lost)
/// rather than panicking inside the observability layer.
macro_rules! get_or_create {
    ($map:expr, $name:expr, $new:expr) => {{
        if let Ok(read) = $map.read() {
            if let Some(m) = read.get($name) {
                return Arc::clone(m);
            }
        }
        match $map.write() {
            Ok(mut write) => Arc::clone(
                write.entry($name.to_string()).or_insert_with(|| $new),
            ),
            Err(_) => $new,
        }
    }};
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create!(self.counters, name, Arc::new(Counter::new()))
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create!(self.gauges, name, Arc::new(Gauge::new()))
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<AtomicHistogram> {
        get_or_create!(self.histograms, name, Arc::new(AtomicHistogram::new()))
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self.counters.read().map_or_else(
            |_| BTreeMap::new(),
            |m| m.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
        );
        let gauges = self.gauges.read().map_or_else(
            |_| BTreeMap::new(),
            |m| m.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
        );
        let histograms = self.histograms.read().map_or_else(
            |_| BTreeMap::new(),
            |m| m.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect(),
        );
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A point-in-time copy of a [`Registry`]'s metrics.
///
/// The JSON rendering ([`Snapshot::to_json`]) is the stable export schema:
///
/// ```json
/// {
///   "schema": "ssf.metrics.v1",
///   "counters": { "<name>": <u64>, ... },
///   "gauges": { "<name>": <f64>, ... },
///   "histograms": {
///     "<name>": {
///       "count": <u64>, "sum_ns": <u64>,
///       "min_ns": <u64>, "max_ns": <u64>, "mean_ns": <f64>,
///       "p50_ns": <u64>, "p95_ns": <u64>, "p99_ns": <u64>,
///       "buckets": [[<le_ns|null>, <count>], ...]
///     }, ...
///   }
/// }
/// ```
///
/// Maps are sorted by metric name; `buckets` lists only non-empty buckets
/// as `[upper_bound, count]` pairs, the overflow bucket with `null` bound.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram copies by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl Snapshot {
    /// `true` when no metric was ever touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name (0.0 when absent).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Histogram by name, if it was recorded into.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Renders the stable JSON export format (see the type docs).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": \"ssf.metrics.v1\",\n");
        out.push_str("  \"counters\": {");
        render_map(&mut out, &self.counters, |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str("},\n  \"gauges\": {");
        render_map(&mut out, &self.gauges, |out, v| {
            let _ = write!(out, "{}", json_f64(*v));
        });
        out.push_str("},\n  \"histograms\": {");
        render_map(&mut out, &self.histograms, |out, h| {
            render_histogram(out, h);
        });
        out.push_str("}\n}\n");
        out
    }
}

/// Renders one sorted `name: value` map body with 4-space indentation.
fn render_map<V>(
    out: &mut String,
    map: &BTreeMap<String, V>,
    mut render: impl FnMut(&mut String, &V),
) {
    let mut first = true;
    for (name, value) in map {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        let _ = write!(out, "    \"{}\": ", escape_json(name));
        render(out, value);
    }
    if !first {
        out.push_str("\n  ");
    }
}

fn render_histogram(out: &mut String, h: &Histogram) {
    let _ = write!(
        out,
        "{{ \"count\": {}, \"sum_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
         \"mean_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \
         \"buckets\": [",
        h.count(),
        h.sum(),
        h.min(),
        h.max(),
        json_f64(h.mean()),
        h.quantile(0.50),
        h.quantile(0.95),
        h.quantile(0.99),
    );
    let mut first = true;
    for (i, &c) in h.bucket_counts().iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !first {
            out.push_str(", ");
        }
        first = false;
        match Histogram::bucket_bound(i) {
            Some(le) => {
                let _ = write!(out, "[{le}, {c}]");
            }
            None => {
                let _ = write!(out, "[null, {c}]");
            }
        }
    }
    out.push_str("] }");
}

/// Formats an `f64` as a JSON number: always with a decimal point or
/// exponent so the type is unambiguous, and non-finite values (invalid in
/// JSON) as `null`.
fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Escapes a metric name for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_renders_canonically() {
        assert_eq!(labeled("ssf.core.ball", &[]), "ssf.core.ball");
        assert_eq!(
            labeled("ssf.stream.quarantined", &[("reason", "self_loop")]),
            "ssf.stream.quarantined{reason=self_loop}"
        );
    }

    #[test]
    fn registry_get_or_create_shares_metrics() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.counter("a").add(3);
        r.gauge("g").set(1.5);
        r.histogram("h").record(2_000);
        let s = r.snapshot();
        assert_eq!(s.counter("a"), 5);
        assert_eq!(s.gauge("g"), 1.5);
        assert_eq!(s.histogram("h").map(Histogram::count), Some(1));
        assert_eq!(s.counter("absent"), 0);
    }

    #[test]
    fn empty_snapshot_renders_valid_json() {
        let s = Registry::new().snapshot();
        assert!(s.is_empty());
        let json = s.to_json();
        assert!(json.contains("\"schema\": \"ssf.metrics.v1\""));
        assert!(json.contains("\"counters\": {}"));
    }

    #[test]
    fn json_f64_is_typed_and_total() {
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(0.25), "0.25");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("tab\tend"), "tab\\u0009end");
    }
}
