//! Property tests over the metric primitives: the algebraic laws the
//! rest of the observability layer leans on.
//!
//! Histogram merging must be a commutative monoid action identical to
//! replaying every sample into one histogram — that is what makes the
//! cross-chunk [`CacheStats`]-style aggregation and any future
//! multi-process rollup well-defined. Quantiles must be monotone in `q`
//! and bracketed by the observed range. Counters must be monotone under
//! concurrent increments and lose nothing.
//!
//! Run with the default test harness and again with
//! `RUST_TEST_THREADS=1` (CI does both): the concurrent properties must
//! hold regardless of how the harness schedules tests around them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use obs::{AtomicHistogram, Counter, Histogram, Registry, BUCKETS};
use proptest::prelude::*;

/// Strategy: a batch of plausible latency samples in nanoseconds,
/// spanning sub-bucket values, mid-range latencies and overflow.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            (0..2_000u64).boxed(),
            (2_000..5_000_000u64).boxed(),
            (5_000_000..20_000_000_000u64).boxed(),
        ],
        0..40,
    )
}

fn hist_of(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `merge` is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn histogram_merge_is_associative(
        a in samples(),
        b in samples(),
        c in samples(),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// `merge` is commutative: a ⊕ b == b ⊕ a.
    #[test]
    fn histogram_merge_is_commutative(a in samples(), b in samples()) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// Merging equals replaying every sample into one histogram, and the
    /// empty histogram is the identity.
    #[test]
    fn histogram_merge_equals_replay(a in samples(), b in samples()) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let all: Vec<u64> =
            a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(&merged, &hist_of(&all));
        merged.merge(&Histogram::new());
        prop_assert_eq!(&merged, &hist_of(&all));
    }

    /// Bucket counts always sum to `count`, whatever was recorded.
    #[test]
    fn histogram_count_equals_bucket_sum(a in samples()) {
        let h = hist_of(&a);
        prop_assert_eq!(h.count(), a.len() as u64);
        prop_assert_eq!(
            h.bucket_counts().iter().sum::<u64>(),
            h.count()
        );
        prop_assert_eq!(h.bucket_counts().len(), BUCKETS);
    }

    /// Quantiles are monotone in `q` and bracketed by `[min, max]`.
    #[test]
    fn quantiles_monotone_and_bracketed(
        a in samples().prop_filter("non-empty", |s| !s.is_empty()),
        q1 in 0.0..1.0f64,
        q2 in 0.0..1.0f64,
    ) {
        let h = hist_of(&a);
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        prop_assert!(h.quantile(lo) <= h.quantile(hi));
        prop_assert!(h.min() <= h.quantile(lo));
        prop_assert!(h.quantile(hi) <= h.max());
        // q = 1 pins to the observed maximum exactly (the last occupied
        // bucket's bound clamps down to `max`); q = 0 only brackets,
        // since the estimate is a bucket upper bound.
        prop_assert_eq!(h.quantile(1.0), h.max());
    }

    /// A counter incremented concurrently from several threads never
    /// shows a decreasing value to a reader and ends at the exact total.
    #[test]
    fn counter_is_monotone_under_concurrent_increments(
        per_thread in prop::collection::vec(1..200u64, 2..5),
    ) {
        let counter = Arc::new(Counter::new());
        let done = Arc::new(AtomicBool::new(false));
        let reader = {
            let counter = Arc::clone(&counter);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut observed = Vec::new();
                while !done.load(Ordering::Acquire) {
                    observed.push(counter.get());
                }
                observed.push(counter.get());
                observed
            })
        };
        let writers: Vec<_> = per_thread
            .iter()
            .map(|&n| {
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..n {
                        counter.incr();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().expect("writer thread must not panic");
        }
        done.store(true, Ordering::Release);
        let observed = reader.join().expect("reader must not panic");
        let total: u64 = per_thread.iter().sum();
        prop_assert!(
            observed.windows(2).all(|w| w[0] <= w[1]),
            "counter reads went backwards: {observed:?}"
        );
        prop_assert_eq!(*observed.last().unwrap(), total);
        prop_assert_eq!(counter.get(), total);
    }

    /// Snapshots of an [`AtomicHistogram`] taken *while* other threads
    /// record still satisfy the bucket-sum invariant, and the final
    /// snapshot accounts for every sample.
    #[test]
    fn atomic_histogram_snapshot_is_consistent_mid_record(
        per_thread in prop::collection::vec(
            prop::collection::vec(0..20_000_000_000u64, 1..60),
            2..4,
        ),
    ) {
        let hist = Arc::new(AtomicHistogram::new());
        let writers: Vec<_> = per_thread
            .iter()
            .cloned()
            .map(|vals| {
                let hist = Arc::clone(&hist);
                std::thread::spawn(move || {
                    for v in vals {
                        hist.record(v);
                    }
                })
            })
            .collect();
        // Snapshot while writers race: count must equal the bucket sum
        // even mid-record (count is derived from the buckets).
        for _ in 0..8 {
            let snap = hist.snapshot();
            prop_assert_eq!(
                snap.bucket_counts().iter().sum::<u64>(),
                snap.count()
            );
        }
        for w in writers {
            w.join().expect("writer thread must not panic");
        }
        let all: Vec<u64> =
            per_thread.iter().flatten().copied().collect();
        prop_assert_eq!(hist.snapshot(), hist_of(&all));
    }

    /// Registry counters accumulate exactly under concurrent writers
    /// sharing one metric name.
    #[test]
    fn registry_counter_loses_nothing_under_contention(
        per_thread in prop::collection::vec(1..300u64, 2..5),
    ) {
        let reg = Arc::new(Registry::new());
        let writers: Vec<_> = per_thread
            .iter()
            .map(|&n| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for _ in 0..n {
                        reg.counter("contended").incr();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().expect("writer thread must not panic");
        }
        let total: u64 = per_thread.iter().sum();
        prop_assert_eq!(reg.snapshot().counter("contended"), total);
    }
}
