//! Little-endian byte codec shared by the snapshot and WAL formats.
//!
//! Everything on disk is little-endian and fixed-width; `usize`-typed
//! in-memory values travel as `u64` so snapshots written on one
//! platform load on any other. Decoding never trusts the input:
//! [`Cursor`] carries the section name it is decoding and turns every
//! short read or range violation into a typed
//! [`PersistError::Corrupt`].

use crate::error::{corrupt, PersistError};

/// Appends a `u32` in little-endian order.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `usize` as a `u64` (the on-disk width is fixed).
pub fn put_usize(buf: &mut Vec<u8>, v: usize) {
    put_u64(buf, v as u64);
}

/// Encodes a `usize` slice as flat little-endian `u64`s.
pub fn encode_usizes(values: &[usize]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 * values.len());
    for &v in values {
        put_usize(&mut buf, v);
    }
    buf
}

/// Encodes a `u32` slice as flat little-endian words.
pub fn encode_u32s(values: &[u32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 * values.len());
    for &v in values {
        put_u32(&mut buf, v);
    }
    buf
}

/// FNV-1a 64-bit hash — the config fingerprint stamped into snapshots.
/// Not cryptographic; it only needs to make "restored under a different
/// configuration" overwhelmingly detectable.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A bounds-checked reader over one decoded section.
#[derive(Debug)]
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    section: &'a str,
}

impl<'a> Cursor<'a> {
    /// Starts decoding `bytes`, attributing failures to `section`.
    pub fn new(section: &'a str, bytes: &'a [u8]) -> Self {
        Cursor {
            bytes,
            pos: 0,
            section,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(corrupt(
                self.section,
                format!(
                    "truncated: wanted {n} more bytes at offset {}, \
                     have {}",
                    self.pos,
                    self.remaining()
                ),
            ));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a `u64` and narrows it to `usize`, rejecting values the
    /// host cannot represent.
    pub fn usize(&mut self) -> Result<usize, PersistError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| {
            corrupt(self.section, format!("length {v} overflows usize"))
        })
    }

    /// Reads `count` little-endian `u64`s as `usize`s.
    pub fn usizes(&mut self, count: usize) -> Result<Vec<usize>, PersistError> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.usize()?);
        }
        Ok(out)
    }

    /// Reads `count` little-endian `u32`s.
    pub fn u32s(&mut self, count: usize) -> Result<Vec<u32>, PersistError> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    /// Asserts the section is fully consumed — trailing garbage in a
    /// checksummed section means the writer and reader disagree on the
    /// format, which is corruption, not slack.
    pub fn finish(self) -> Result<(), PersistError> {
        if self.remaining() != 0 {
            return Err(corrupt(
                self.section,
                format!("{} trailing bytes after decode", self.remaining()),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_arrays() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        buf.extend_from_slice(&encode_usizes(&[0, 7, 42]));
        buf.extend_from_slice(&encode_u32s(&[1, 2, 3]));
        let mut c = Cursor::new("test", &buf);
        assert_eq!(c.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.u64().unwrap(), u64::MAX - 1);
        assert_eq!(c.usizes(3).unwrap(), vec![0, 7, 42]);
        assert_eq!(c.u32s(3).unwrap(), vec![1, 2, 3]);
        c.finish().unwrap();
    }

    #[test]
    fn truncation_is_a_typed_corruption() {
        let mut c = Cursor::new("meta", &[1, 2, 3]);
        let err = c.u32().unwrap_err();
        let msg = err.to_string();
        assert!(msg.starts_with("corrupt meta:"), "{msg}");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 9);
        buf.push(0xFF);
        let mut c = Cursor::new("meta", &buf);
        c.u32().unwrap();
        assert!(c.finish().is_err());
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_ne!(fnv1a64(b"k=10"), fnv1a64(b"k=11"));
        assert_eq!(fnv1a64(b"k=10"), fnv1a64(b"k=10"));
    }
}
