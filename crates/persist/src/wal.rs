//! Segmented write-ahead log for the ingest stream.
//!
//! Every `observe()` call on a durable predictor appends one record
//! *before* the in-memory state mutates; recovery replays the tail on
//! top of the latest snapshot through the exact same code path, which
//! is what makes recovered scores bit-identical.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! segment file "wal-<start_seq, 20 digits>.log":
//!   magic   "SSFW"              4 bytes
//!   version u32 (currently 1)   4 bytes
//!   start   u64 first sequence  8 bytes
//!   record, repeated:
//!     len  u32 payload length   4 bytes
//!     crc  u32 CRC-32(payload)  4 bytes
//!     payload                   len bytes
//! event payload (kind 1):
//!   seq u64, kind u8 = 1, u u32, v u32, t u32   (21 bytes)
//! advance payload (kind 2):
//!   seq u64, kind u8 = 2, horizon u32           (13 bytes)
//! ```
//!
//! Records carry their sequence number explicitly and replay enforces
//! strict `+1` continuity within and across segments, so duplicated or
//! reordered bytes are detected exactly like checksum failures: the log
//! has a valid prefix and a rejected tail, never a silently-wrong
//! middle. [`replay`] optionally repairs in place — truncating the torn
//! segment at the first bad byte and deleting unreachable later
//! segments — so the writer can always resume appending cleanly.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use crate::codec::{put_u32, put_u64};
use crate::crc::crc32;
use crate::error::PersistError;

/// Segment file magic.
pub const SEGMENT_MAGIC: [u8; 4] = *b"SSFW";
/// Current WAL format version.
pub const VERSION: u32 = 1;
/// Segment header size in bytes.
const HEADER_LEN: u64 = 16;
/// Upper bound on a record payload; anything larger is a corrupt
/// length field, refused before allocation.
const MAX_PAYLOAD: u32 = 1024;
/// Payload kind tag for a link event.
const KIND_EVENT: u8 = 1;
/// Payload kind tag for a window advance.
const KIND_ADVANCE: u8 = 2;
/// Encoded size of an event payload.
const EVENT_PAYLOAD: u32 = 21;
/// Encoded size of an advance payload.
const ADVANCE_PAYLOAD: u32 = 13;

/// When appended records reach the disk platter.
///
/// The write itself always happens immediately (the OS page cache sees
/// every record, so a process crash loses nothing); the policy only
/// governs `fsync`, i.e. what a *machine* crash can take with it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every record: zero loss on power failure, slowest.
    #[default]
    Always,
    /// fsync every `n` records: bounded loss window, amortized cost.
    EveryN(u32),
    /// Never fsync explicitly; the OS flushes at its leisure.
    Never,
}

/// Writer-side configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalOptions {
    /// Durability of each append; see [`FsyncPolicy`].
    pub fsync: FsyncPolicy,
    /// Rotate to a fresh segment once the current one reaches this many
    /// bytes. Checkpoints delete whole segments, so smaller segments
    /// mean finer-grained truncation at the cost of more files.
    pub segment_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            fsync: FsyncPolicy::default(),
            segment_bytes: 4 * 1024 * 1024,
        }
    }
}

/// One decoded WAL record: an operation with its sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecord {
    /// Position in the global event sequence, starting at 0.
    pub seq: u64,
    /// The logged operation.
    pub op: WalOp,
}

/// The operation a WAL record carries. Advances share the event
/// sequence space, so strict `+1` continuity covers both kinds and a
/// replayed stream interleaves them exactly as the writer logged them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// A link event, as passed to `observe`.
    Event {
        /// First endpoint.
        u: u32,
        /// Second endpoint.
        v: u32,
        /// Event timestamp.
        t: u32,
    },
    /// An explicit sliding-window advance to a new horizon.
    Advance {
        /// The new window horizon.
        horizon: u32,
    },
}

/// Whether replay should keep consuming records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayStep {
    /// Deliver the next record.
    Continue,
    /// Stop cleanly; remaining valid records stay on disk untouched.
    Stop,
}

/// What a [`replay`] pass found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Records delivered to the callback (`seq >= from_seq`).
    pub records_replayed: u64,
    /// Valid records below `from_seq` (already covered by a snapshot).
    pub records_skipped: u64,
    /// Bytes discarded as a torn or corrupt tail, across all segments.
    pub bytes_dropped: u64,
    /// `true` if any corruption was hit (the tail after it is gone).
    pub tail_truncated: bool,
    /// Segment files visited.
    pub segments_scanned: u64,
    /// Segment files deleted during repair.
    pub segments_removed: u64,
}

/// Lists `wal-*.log` segments in `dir`, sorted by start sequence.
///
/// # Errors
///
/// Returns [`PersistError::Io`] if the directory cannot be read.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, PersistError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
        else {
            continue;
        };
        if let Ok(start) = stem.parse::<u64>() {
            out.push((start, path));
        }
    }
    out.sort();
    Ok(out)
}

fn segment_path(dir: &Path, start_seq: u64) -> PathBuf {
    dir.join(format!("wal-{start_seq:020}.log"))
}

/// Append-only WAL writer. Single-owner: the durable predictor holds
/// exactly one per directory.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    opts: WalOptions,
    file: File,
    seg_start: u64,
    seg_bytes: u64,
    next_seq: u64,
    unsynced: u32,
    /// Set when a failed append could not be rolled back: the segment
    /// may end in a partial record, so anything written after it would
    /// be unreachable at replay. A poisoned writer refuses all further
    /// appends instead of silently stranding them.
    poisoned: bool,
}

impl WalWriter {
    /// Opens a writer whose next record will carry `next_seq`, starting
    /// a fresh segment there. Called after recovery (which reports the
    /// sequence it replayed up to) or on a brand-new directory with
    /// `next_seq == 0`.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on filesystem failure.
    pub fn create(
        dir: &Path,
        next_seq: u64,
        opts: WalOptions,
    ) -> Result<Self, PersistError> {
        fs::create_dir_all(dir)?;
        let (file, seg_bytes) = Self::open_segment(dir, next_seq)?;
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            opts,
            file,
            seg_start: next_seq,
            seg_bytes,
            next_seq,
            unsynced: 0,
            poisoned: false,
        })
    }

    /// Creates (truncating any leftover) the segment starting at
    /// `start_seq` and writes its header.
    fn open_segment(
        dir: &Path,
        start_seq: u64,
    ) -> Result<(File, u64), PersistError> {
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(&SEGMENT_MAGIC);
        put_u32(&mut header, VERSION);
        put_u64(&mut header, start_seq);
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(segment_path(dir, start_seq))?;
        file.write_all(&header)?;
        Ok((file, HEADER_LEN))
    }

    /// The sequence number the next appended record will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends one link event, returning its sequence number. Rotates
    /// to a new segment first if the current one is full, and applies
    /// the fsync policy after the write.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on filesystem failure. The caller
    /// must treat an error as "not logged" and surface the durability
    /// degradation; the in-memory state may still advance. A failed
    /// write rolls the segment back to the last whole record so later
    /// appends stay reachable at replay; if even the rollback fails the
    /// writer is poisoned and every further append errors immediately
    /// (reopening the log repairs the torn segment).
    pub fn append(
        &mut self,
        u: u32,
        v: u32,
        t: u32,
    ) -> Result<u64, PersistError> {
        self.append_op(WalOp::Event { u, v, t })
    }

    /// Appends one window-advance record, returning its sequence
    /// number. Advances share the sequence space with link events, so
    /// replay reproduces the exact interleaving of inserts and expiries.
    ///
    /// # Errors
    ///
    /// Same conditions and rollback behavior as
    /// [`WalWriter::append`].
    pub fn append_advance(
        &mut self,
        horizon: u32,
    ) -> Result<u64, PersistError> {
        self.append_op(WalOp::Advance { horizon })
    }

    fn append_op(&mut self, op: WalOp) -> Result<u64, PersistError> {
        if self.poisoned {
            return Err(PersistError::Io(io::Error::other(
                "WAL writer poisoned: an earlier failed append could \
                 not be rolled back; reopen the log to repair it",
            )));
        }
        if self.seg_bytes >= self.opts.segment_bytes {
            self.rotate()?;
        }
        let seq = self.next_seq;
        let mut payload = Vec::with_capacity(EVENT_PAYLOAD as usize);
        put_u64(&mut payload, seq);
        match op {
            WalOp::Event { u, v, t } => {
                payload.push(KIND_EVENT);
                put_u32(&mut payload, u);
                put_u32(&mut payload, v);
                put_u32(&mut payload, t);
            }
            WalOp::Advance { horizon } => {
                payload.push(KIND_ADVANCE);
                put_u32(&mut payload, horizon);
            }
        }
        let mut record = Vec::with_capacity(8 + payload.len());
        put_u32(&mut record, payload.len() as u32);
        put_u32(&mut record, crc32(&payload));
        record.extend_from_slice(&payload);
        if let Err(e) = self.file.write_all(&record) {
            // Part of the record may already be on disk. Left there, it
            // would become a torn *middle* once the next append lands
            // after it — replay truncates at the first bad byte, so
            // every later record would be silently unreachable. Roll
            // back to the last whole record; if that fails too, refuse
            // all further appends rather than strand them.
            if self.restore_tail().is_err() {
                self.poisoned = true;
            }
            return Err(e.into());
        }
        self.seg_bytes += record.len() as u64;
        self.next_seq += 1;
        match self.opts.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(seq)
    }

    /// Drops any partially written bytes past the last whole record,
    /// restoring the segment length *and* the file cursor to the last
    /// known-good boundary.
    fn restore_tail(&mut self) -> io::Result<()> {
        self.file.set_len(self.seg_bytes)?;
        self.file.seek(SeekFrom::Start(self.seg_bytes))?;
        Ok(())
    }

    /// `true` once a failed append could not be rolled back; the writer
    /// refuses further appends until the log is reopened (which repairs
    /// the torn segment during replay).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Forces all appended records to stable storage.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] if `fsync` fails.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Closes the current segment and starts a fresh one at
    /// [`Self::next_seq`].
    fn rotate(&mut self) -> Result<(), PersistError> {
        self.sync()?;
        let (file, seg_bytes) = Self::open_segment(&self.dir, self.next_seq)?;
        self.file = file;
        self.seg_start = self.next_seq;
        self.seg_bytes = seg_bytes;
        Ok(())
    }

    /// Checkpoint truncation: rotates so the live segment starts at the
    /// current [`Self::next_seq`], then deletes every segment whose
    /// records all fall below `seq` (i.e. are covered by a snapshot).
    /// Returns the number of segments removed.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on filesystem failure.
    pub fn truncate_below(&mut self, seq: u64) -> Result<u64, PersistError> {
        if self.seg_start < self.next_seq {
            self.rotate()?;
        }
        let segments = list_segments(&self.dir)?;
        let mut removed = 0;
        for (i, (start, path)) in segments.iter().enumerate() {
            if *path == segment_path(&self.dir, self.seg_start) {
                continue;
            }
            // A segment is disposable iff a later segment begins at or
            // below `seq` — then every record in it is below `seq`.
            let covered = segments
                .get(i + 1)
                .is_some_and(|&(next_start, _)| next_start <= seq);
            if covered && *start < seq {
                fs::remove_file(path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

/// Replays the log in `dir`, delivering every record with
/// `seq >= from_seq` to `on_event` in order.
///
/// Validation is strict: segment headers, record lengths, checksums and
/// exact `+1` sequence continuity (within and across segments). The
/// first violation ends the scan — everything before it is the valid
/// prefix, everything after is counted into
/// [`ReplayReport::bytes_dropped`]. With `repair` set, the torn segment
/// is physically truncated at the violation and unreachable later
/// segments are deleted, leaving a log a [`WalWriter`] can extend.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failure, or an error
/// propagated from the callback. Corruption is *not* an error here — it
/// is reported, because a valid prefix is still a usable recovery.
pub fn replay<F>(
    dir: &Path,
    from_seq: u64,
    repair: bool,
    mut on_event: F,
) -> Result<ReplayReport, PersistError>
where
    F: FnMut(WalRecord) -> Result<ReplayStep, PersistError>,
{
    let segments = list_segments(dir)?;
    let mut report = ReplayReport::default();
    let mut expected: Option<u64> = None;
    let mut stopped = false;
    // Index of the first segment that is no longer trustworthy, plus
    // the byte offset at which its valid prefix ends.
    let mut cut: Option<(usize, u64)> = None;
    for (i, (start_seq, path)) in segments.iter().enumerate() {
        if stopped {
            break;
        }
        let bytes = fs::read(path)?;
        report.segments_scanned += 1;
        match scan_segment(
            &bytes,
            *start_seq,
            expected,
            from_seq,
            &mut report,
            &mut on_event,
        )? {
            SegmentOutcome::Clean { next_expected } => {
                expected = Some(next_expected);
            }
            SegmentOutcome::Stopped => {
                stopped = true;
            }
            SegmentOutcome::Torn { valid_bytes } => {
                report.tail_truncated = true;
                report.bytes_dropped += bytes.len() as u64 - valid_bytes;
                for (_, later) in &segments[i + 1..] {
                    report.bytes_dropped += fs::metadata(later)?.len();
                }
                cut = Some((i, valid_bytes));
                break;
            }
        }
    }
    if repair {
        if let Some((i, valid_bytes)) = cut {
            let (_, path) = &segments[i];
            if valid_bytes == 0 {
                // Bad header or unreachable sequence range: nothing in
                // the file is usable, so repair removes it outright.
                fs::remove_file(path)?;
                report.segments_removed += 1;
            } else {
                let f = OpenOptions::new().write(true).open(path)?;
                f.set_len(valid_bytes)?;
                f.sync_all()?;
            }
            for (_, later) in &segments[i + 1..] {
                fs::remove_file(later)?;
                report.segments_removed += 1;
            }
        }
    }
    Ok(report)
}

enum SegmentOutcome {
    /// Whole segment consumed; the next segment must start here.
    Clean { next_expected: u64 },
    /// The callback asked to stop; the rest of the log is untouched.
    Stopped,
    /// Corruption at `valid_bytes`; everything after is a torn tail.
    Torn { valid_bytes: u64 },
}

/// Scans one segment, delivering records and classifying the outcome.
fn scan_segment<F>(
    bytes: &[u8],
    start_seq: u64,
    expected: Option<u64>,
    from_seq: u64,
    report: &mut ReplayReport,
    on_event: &mut F,
) -> Result<SegmentOutcome, PersistError>
where
    F: FnMut(WalRecord) -> Result<ReplayStep, PersistError>,
{
    // Header: magic, version, start sequence — and continuity with the
    // previous segment.
    if bytes.len() < HEADER_LEN as usize
        || bytes[..4] != SEGMENT_MAGIC
        || bytes[4..8] != VERSION.to_le_bytes()
        || bytes[8..16] != start_seq.to_le_bytes()
    {
        return Ok(SegmentOutcome::Torn { valid_bytes: 0 });
    }
    if let Some(e) = expected {
        if start_seq != e {
            // Gap or overlap between segments: the tail is unusable.
            return Ok(SegmentOutcome::Torn { valid_bytes: 0 });
        }
    } else if start_seq > from_seq {
        // The log starts after the snapshot ends: records in between
        // are gone, so nothing past this point can be applied.
        return Ok(SegmentOutcome::Torn { valid_bytes: 0 });
    }
    let mut pos = HEADER_LEN as usize;
    let mut next = start_seq;
    while pos < bytes.len() {
        let Some(record) = decode_record(&bytes[pos..], next) else {
            return Ok(SegmentOutcome::Torn {
                valid_bytes: pos as u64,
            });
        };
        let (rec, consumed) = record;
        if rec.seq < from_seq {
            report.records_skipped += 1;
        } else {
            match on_event(rec)? {
                ReplayStep::Continue => report.records_replayed += 1,
                ReplayStep::Stop => return Ok(SegmentOutcome::Stopped),
            }
        }
        next += 1;
        pos += consumed;
    }
    Ok(SegmentOutcome::Clean {
        next_expected: next,
    })
}

/// Decodes the record at the head of `bytes`, requiring sequence
/// `expect_seq`. `None` means the bytes are torn or corrupt.
fn decode_record(bytes: &[u8], expect_seq: u64) -> Option<(WalRecord, usize)> {
    if bytes.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let want_crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if len > MAX_PAYLOAD || bytes.len() < 8 + len as usize {
        return None;
    }
    let payload = &bytes[8..8 + len as usize];
    if crc32(payload) != want_crc || len < 9 {
        return None;
    }
    let mut seq_bytes = [0u8; 8];
    seq_bytes.copy_from_slice(&payload[..8]);
    let seq = u64::from_le_bytes(seq_bytes);
    if seq != expect_seq {
        return None;
    }
    let word = |i: usize| {
        u32::from_le_bytes([
            payload[9 + 4 * i],
            payload[10 + 4 * i],
            payload[11 + 4 * i],
            payload[12 + 4 * i],
        ])
    };
    let op = match (payload[8], len) {
        (KIND_EVENT, EVENT_PAYLOAD) => WalOp::Event {
            u: word(0),
            v: word(1),
            t: word(2),
        },
        (KIND_ADVANCE, ADVANCE_PAYLOAD) => WalOp::Advance { horizon: word(0) },
        _ => return None,
    };
    Some((WalRecord { seq, op }, 8 + len as usize))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("ssf-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn collect(dir: &Path, from_seq: u64) -> (Vec<WalRecord>, ReplayReport) {
        let mut got = Vec::new();
        let report = replay(dir, from_seq, false, |r| {
            got.push(r);
            Ok(ReplayStep::Continue)
        })
        .unwrap();
        (got, report)
    }

    #[test]
    fn append_then_replay_round_trips() {
        let dir = temp_dir("roundtrip");
        let mut w = WalWriter::create(&dir, 0, WalOptions::default()).unwrap();
        for i in 0..10u32 {
            let seq = w.append(i, i + 1, 100 + i).unwrap();
            assert_eq!(seq, i as u64);
        }
        let (got, report) = collect(&dir, 0);
        assert_eq!(got.len(), 10);
        assert_eq!(report.records_replayed, 10);
        assert_eq!(report.records_skipped, 0);
        assert!(!report.tail_truncated);
        for (i, r) in got.iter().enumerate() {
            let i = i as u32;
            assert_eq!(
                *r,
                WalRecord {
                    seq: i as u64,
                    op: WalOp::Event {
                        u: i,
                        v: i + 1,
                        t: 100 + i
                    }
                }
            );
        }
        // Skipping a prefix works too.
        let (tail, report) = collect(&dir, 7);
        assert_eq!(tail.len(), 3);
        assert_eq!(report.records_skipped, 7);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn advances_interleave_with_events_in_sequence_order() {
        let dir = temp_dir("advance");
        let mut w = WalWriter::create(&dir, 0, WalOptions::default()).unwrap();
        assert_eq!(w.append(0, 1, 5).unwrap(), 0);
        assert_eq!(w.append_advance(9).unwrap(), 1);
        assert_eq!(w.append(1, 2, 9).unwrap(), 2);
        assert_eq!(w.append_advance(u32::MAX).unwrap(), 3);
        let (got, report) = collect(&dir, 0);
        assert_eq!(report.records_replayed, 4);
        assert!(!report.tail_truncated);
        assert_eq!(
            got.iter().map(|r| r.op).collect::<Vec<_>>(),
            vec![
                WalOp::Event { u: 0, v: 1, t: 5 },
                WalOp::Advance { horizon: 9 },
                WalOp::Event { u: 1, v: 2, t: 9 },
                WalOp::Advance { horizon: u32::MAX },
            ]
        );
        assert_eq!(
            got.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_advance_record_ends_the_prefix() {
        let dir = temp_dir("advance-flip");
        let mut w = WalWriter::create(&dir, 0, WalOptions::default()).unwrap();
        w.append(0, 1, 1).unwrap(); // 29 bytes
        w.append_advance(7).unwrap(); // 21 bytes
        w.append(1, 2, 8).unwrap();
        drop(w);
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip a bit inside the advance record's horizon field.
        let off = HEADER_LEN as usize + 29 + 8 + 9;
        bytes[off] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let (got, report) = collect(&dir, 0);
        assert_eq!(got.len(), 1, "only the record before the flip survives");
        assert!(report.tail_truncated);
        assert_eq!(report.bytes_dropped, 21 + 29);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn event_kind_with_advance_length_is_rejected() {
        let dir = temp_dir("kind-mismatch");
        let mut w = WalWriter::create(&dir, 0, WalOptions::default()).unwrap();
        w.append_advance(3).unwrap();
        drop(w);
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Rewrite the kind byte to EVENT and fix the checksum: the
        // payload is now self-consistent but 13 bytes is not a valid
        // event length, so decoding must still refuse it.
        let payload_at = HEADER_LEN as usize + 8;
        bytes[payload_at + 8] = KIND_EVENT;
        let crc = crc32(&bytes[payload_at..payload_at + 13]);
        bytes[HEADER_LEN as usize + 4..HEADER_LEN as usize + 8]
            .copy_from_slice(&crc.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let (got, report) = collect(&dir, 0);
        assert!(got.is_empty());
        assert!(report.tail_truncated);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_splits_segments_and_replay_stitches_them() {
        let dir = temp_dir("rotate");
        let opts = WalOptions {
            segment_bytes: 64, // a couple of records per segment
            fsync: FsyncPolicy::Never,
        };
        let mut w = WalWriter::create(&dir, 0, opts).unwrap();
        for i in 0..20u32 {
            w.append(i, i + 1, i).unwrap();
        }
        assert!(list_segments(&dir).unwrap().len() > 3);
        let (got, report) = collect(&dir, 0);
        assert_eq!(got.len(), 20);
        assert!(!report.tail_truncated);
        assert_eq!(
            report.segments_scanned as usize,
            list_segments(&dir).unwrap().len()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = temp_dir("torn");
        let mut w = WalWriter::create(&dir, 0, WalOptions::default()).unwrap();
        for i in 0..5u32 {
            w.append(i, i + 1, i).unwrap();
        }
        drop(w);
        // Tear the last record: chop 3 bytes off the segment.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let mut got = Vec::new();
        let report = replay(&dir, 0, true, |r| {
            got.push(r);
            Ok(ReplayStep::Continue)
        })
        .unwrap();
        assert_eq!(got.len(), 4);
        assert!(report.tail_truncated);
        assert_eq!(report.bytes_dropped, 29 - 3);
        // Repair truncated the file; a second replay is clean.
        let (again, report2) = collect(&dir, 0);
        assert_eq!(again.len(), 4);
        assert!(!report2.tail_truncated);
        // And the writer resumes at the recovered sequence.
        let mut w = WalWriter::create(&dir, 4, WalOptions::default()).unwrap();
        w.append(9, 10, 11).unwrap();
        let (full, _) = collect(&dir, 0);
        assert_eq!(full.len(), 5);
        assert_eq!(
            full[4],
            WalRecord {
                seq: 4,
                op: WalOp::Event { u: 9, v: 10, t: 11 }
            }
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_ends_the_prefix() {
        let dir = temp_dir("flip");
        let mut w = WalWriter::create(&dir, 0, WalOptions::default()).unwrap();
        for i in 0..8u32 {
            w.append(i, i + 1, i).unwrap();
        }
        drop(w);
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip a bit inside record 3's payload.
        let off = HEADER_LEN as usize + 3 * 29 + 12;
        bytes[off] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let (got, report) = collect(&dir, 0);
        assert_eq!(got.len(), 3);
        assert!(report.tail_truncated);
        assert_eq!(report.bytes_dropped, 5 * 29);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicated_record_bytes_are_rejected() {
        let dir = temp_dir("dup");
        let mut w = WalWriter::create(&dir, 0, WalOptions::default()).unwrap();
        for i in 0..4u32 {
            w.append(i, i + 1, i).unwrap();
        }
        drop(w);
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Duplicate the final record verbatim — checksums pass, but the
        // sequence number repeats.
        let tail = bytes[bytes.len() - 29..].to_vec();
        bytes.extend_from_slice(&tail);
        fs::write(&path, &bytes).unwrap();
        let (got, report) = collect(&dir, 0);
        assert_eq!(got.len(), 4, "the valid prefix survives");
        assert!(report.tail_truncated);
        assert_eq!(report.bytes_dropped, 29);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_append_rolls_back_the_partial_record() {
        let dir = temp_dir("rollback");
        let mut w = WalWriter::create(&dir, 0, WalOptions::default()).unwrap();
        w.append(1, 2, 3).unwrap();
        // Simulate the on-disk aftermath of a write that failed midway:
        // garbage bytes past the last whole record, cursor advanced
        // with them — exactly the state `append` hands to the rollback.
        w.file.write_all(&[0xEE; 11]).unwrap();
        w.restore_tail().unwrap();
        // The next append lands at the record boundary, not after the
        // garbage, so replay sees an unbroken log.
        w.append(4, 5, 6).unwrap();
        drop(w);
        let (got, report) = collect(&dir, 0);
        assert_eq!(got.len(), 2);
        assert!(!report.tail_truncated);
        assert_eq!(
            got[1],
            WalRecord {
                seq: 1,
                op: WalOp::Event { u: 4, v: 5, t: 6 }
            }
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unrollbackable_append_poisons_the_writer() {
        let dir = temp_dir("poison");
        let mut w = WalWriter::create(&dir, 0, WalOptions::default()).unwrap();
        w.append(1, 2, 3).unwrap();
        // Swap in a read-only handle: the write fails, and so does the
        // rollback (`set_len` needs write access).
        w.file = File::open(segment_path(&dir, 0)).unwrap();
        assert!(w.append(4, 5, 6).is_err());
        assert!(w.is_poisoned());
        // Poisoned writers fail fast instead of stranding records
        // behind a possibly-torn tail.
        let err = w.append(7, 8, 9).expect_err("poisoned writer");
        assert!(err.to_string().contains("poisoned"), "{err}");
        assert_eq!(w.next_seq(), 1, "failed appends consume no sequence");
        drop(w);
        // The durable prefix is intact; reopening repairs and resumes.
        let (got, report) = collect(&dir, 0);
        assert_eq!(got.len(), 1);
        assert!(!report.tail_truncated);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_below_deletes_covered_segments() {
        let dir = temp_dir("checkpoint");
        let opts = WalOptions {
            segment_bytes: 64,
            fsync: FsyncPolicy::EveryN(4),
        };
        let mut w = WalWriter::create(&dir, 0, opts).unwrap();
        for i in 0..20u32 {
            w.append(i, i + 1, i).unwrap();
        }
        let seq = w.next_seq();
        assert!(list_segments(&dir).unwrap().len() > 3);
        let removed = w.truncate_below(seq).unwrap();
        assert!(removed > 3);
        // Everything below the checkpoint is gone; the live segment
        // starts exactly at the checkpointed sequence.
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].0, seq);
        // New appends continue the sequence and replay only the tail.
        w.append(77, 78, 79).unwrap();
        let (got, report) = collect(&dir, seq);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, seq);
        assert_eq!(report.records_skipped, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_can_stop_early_without_damage() {
        let dir = temp_dir("stop");
        let mut w = WalWriter::create(&dir, 0, WalOptions::default()).unwrap();
        for i in 0..6u32 {
            w.append(i, i + 1, i).unwrap();
        }
        drop(w);
        let mut seen = 0u64;
        let report = replay(&dir, 0, true, |_| {
            seen += 1;
            Ok(if seen == 3 {
                ReplayStep::Stop
            } else {
                ReplayStep::Continue
            })
        })
        .unwrap();
        assert_eq!(report.records_replayed, 2);
        assert!(!report.tail_truncated);
        assert_eq!(report.segments_removed, 0);
        // Nothing was truncated: a full replay still sees all 6.
        let (got, _) = collect(&dir, 0);
        assert_eq!(got.len(), 6);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_wal_gap_after_snapshot_is_reported_not_applied() {
        let dir = temp_dir("gap");
        // Log starts at sequence 10, but the caller's snapshot only
        // covers up to 5: the five missing records make the tail
        // unusable.
        let mut w = WalWriter::create(&dir, 10, WalOptions::default()).unwrap();
        w.append(1, 2, 3).unwrap();
        drop(w);
        let (got, report) = collect(&dir, 5);
        assert!(got.is_empty());
        assert!(report.tail_truncated);
        assert!(report.bytes_dropped > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_directory_replays_nothing() {
        let dir = temp_dir("empty");
        let (got, report) = collect(&dir, 0);
        assert!(got.is_empty());
        assert_eq!(report, ReplayReport::default());
        fs::remove_dir_all(&dir).unwrap();
    }
}
