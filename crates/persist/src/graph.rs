//! `FrozenGraph` ⇄ snapshot sections.
//!
//! The on-disk layout mirrors [`FrozenGraph`]'s in-memory CSR exactly:
//! one section per flat array (`offsets` and `nbr_offsets` as `u64`,
//! ids and timestamps as `u32`, all little-endian) plus a small meta
//! section with the counters. Decoding builds a
//! [`FrozenGraphParts`] and funnels it through
//! [`FrozenGraph::try_from_parts`], so a graph that loads is a graph
//! whose every structural invariant has been re-proven — checksums
//! catch flipped bits, the validator catches a consistent-looking but
//! internally wrong CSR.

use dyngraph::{FrozenGraph, FrozenGraphParts, GraphView};

use crate::codec::{encode_u32s, encode_usizes, put_u32, put_u64, Cursor};
use crate::error::PersistError;
use crate::snapshot::{SnapshotReader, SnapshotWriter};

/// Section names for the graph payload.
pub const SEC_GRAPH_META: &str = "graph.meta";
/// Incident-link row bounds, `u64` each.
pub const SEC_GRAPH_OFFSETS: &str = "graph.offsets";
/// Flat neighbor ids, `u32` each.
pub const SEC_GRAPH_NEIGHBORS: &str = "graph.neighbors";
/// Flat timestamps, `u32` each, parallel to the neighbors.
pub const SEC_GRAPH_TIMESTAMPS: &str = "graph.timestamps";
/// Distinct-neighbor row bounds, `u64` each.
pub const SEC_GRAPH_NBR_OFFSETS: &str = "graph.nbr_offsets";
/// Flat distinct-neighbor ids, `u32` each.
pub const SEC_GRAPH_NBR_IDS: &str = "graph.nbr_ids";

/// Writes `g` into `w` as the six `graph.*` sections.
pub fn encode_graph(g: &FrozenGraph, w: &mut SnapshotWriter) {
    let (min_ts, max_ts) = g.raw_timestamp_bounds();
    let mut meta = Vec::with_capacity(8 * 3 + 4 * 2);
    put_u64(&mut meta, g.link_count() as u64);
    put_u64(&mut meta, g.node_count() as u64);
    put_u64(&mut meta, g.revision());
    put_u32(&mut meta, min_ts);
    put_u32(&mut meta, max_ts);
    w.section(SEC_GRAPH_META, meta);
    w.section(SEC_GRAPH_OFFSETS, encode_usizes(g.csr_offsets()));
    w.section(SEC_GRAPH_NEIGHBORS, encode_u32s(g.csr_neighbors()));
    w.section(SEC_GRAPH_TIMESTAMPS, encode_u32s(g.csr_timestamps()));
    w.section(SEC_GRAPH_NBR_OFFSETS, encode_usizes(g.csr_nbr_offsets()));
    w.section(SEC_GRAPH_NBR_IDS, encode_u32s(g.csr_nbr_ids()));
}

/// Reads the `graph.*` sections of `r` back into a validated
/// [`FrozenGraph`].
///
/// # Errors
///
/// Returns [`PersistError::Corrupt`] if any section is missing,
/// malformed, or the reassembled CSR violates a structural invariant.
pub fn decode_graph(r: &SnapshotReader) -> Result<FrozenGraph, PersistError> {
    let mut meta = Cursor::new(SEC_GRAPH_META, r.require(SEC_GRAPH_META)?);
    let num_links = meta.usize()?;
    let node_count = meta.usize()?;
    let revision = meta.u64()?;
    let min_ts = meta.u32()?;
    let max_ts = meta.u32()?;
    meta.finish()?;

    let read_usizes = |name: &'static str, count: usize| {
        let mut c = Cursor::new(name, r.require(name)?);
        let out = c.usizes(count)?;
        c.finish()?;
        Ok::<_, PersistError>(out)
    };
    let read_u32s = |name: &'static str, count: usize| {
        let mut c = Cursor::new(name, r.require(name)?);
        let out = c.u32s(count)?;
        c.finish()?;
        Ok::<_, PersistError>(out)
    };

    let offsets = read_usizes(SEC_GRAPH_OFFSETS, node_count + 1)?;
    let neighbors = read_u32s(SEC_GRAPH_NEIGHBORS, 2 * num_links)?;
    let timestamps = read_u32s(SEC_GRAPH_TIMESTAMPS, 2 * num_links)?;
    let nbr_offsets = read_usizes(SEC_GRAPH_NBR_OFFSETS, node_count + 1)?;
    let nbr_count = *nbr_offsets.last().unwrap_or(&0);
    let nbr_ids = read_u32s(SEC_GRAPH_NBR_IDS, nbr_count)?;

    FrozenGraph::try_from_parts(FrozenGraphParts {
        offsets,
        neighbors,
        timestamps,
        nbr_offsets,
        nbr_ids,
        num_links,
        min_ts,
        max_ts,
        revision,
    })
    .map_err(|e| PersistError::Corrupt {
        section: "graph".to_string(),
        detail: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use dyngraph::DynamicNetwork;

    use super::*;
    use crate::snapshot::SnapshotReader;

    fn sample() -> FrozenGraph {
        let mut g = DynamicNetwork::new();
        g.add_link(0, 1, 3);
        g.add_link(1, 2, 5);
        g.add_link(0, 1, 4);
        g.add_link(3, 1, 2);
        g.ensure_node(6);
        FrozenGraph::from_view(&g)
    }

    fn round_trip(g: &FrozenGraph) -> FrozenGraph {
        let mut w = SnapshotWriter::new();
        encode_graph(g, &mut w);
        let r = SnapshotReader::from_bytes(&w.to_bytes()).unwrap();
        decode_graph(&r).unwrap()
    }

    #[test]
    fn graph_round_trips_bit_identically() {
        let g = sample();
        assert_eq!(round_trip(&g), g);
        let empty = FrozenGraph::empty();
        assert_eq!(round_trip(&empty), empty);
    }

    #[test]
    fn payload_corruption_is_typed_not_panicking() {
        let mut w = SnapshotWriter::new();
        encode_graph(&sample(), &mut w);
        let bytes = w.to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] = bad[i].wrapping_add(1);
            let outcome =
                SnapshotReader::from_bytes(&bad).and_then(|r| decode_graph(&r));
            match outcome {
                Err(PersistError::Corrupt { .. }) => {}
                Err(other) => panic!("byte {i}: unexpected {other}"),
                Ok(g) => assert_eq!(
                    g,
                    sample(),
                    "byte {i} silently changed the graph"
                ),
            }
        }
    }

    #[test]
    fn cross_section_lies_are_caught_by_the_validator() {
        // A snapshot whose sections each checksum fine but which
        // disagree with each other: claim one fewer link than the
        // arrays hold.
        let g = sample();
        let mut w = SnapshotWriter::new();
        let (min_ts, max_ts) = g.raw_timestamp_bounds();
        let mut meta = Vec::new();
        crate::codec::put_u64(&mut meta, g.link_count() as u64 - 1);
        crate::codec::put_u64(&mut meta, g.node_count() as u64);
        crate::codec::put_u64(&mut meta, g.revision());
        crate::codec::put_u32(&mut meta, min_ts);
        crate::codec::put_u32(&mut meta, max_ts);
        w.section(SEC_GRAPH_META, meta);
        w.section(SEC_GRAPH_OFFSETS, encode_usizes(g.csr_offsets()));
        w.section(SEC_GRAPH_NEIGHBORS, encode_u32s(g.csr_neighbors()));
        w.section(SEC_GRAPH_TIMESTAMPS, encode_u32s(g.csr_timestamps()));
        w.section(SEC_GRAPH_NBR_OFFSETS, encode_usizes(g.csr_nbr_offsets()));
        w.section(SEC_GRAPH_NBR_IDS, encode_u32s(g.csr_nbr_ids()));
        let r = SnapshotReader::from_bytes(&w.to_bytes()).unwrap();
        assert!(matches!(
            decode_graph(&r),
            Err(PersistError::Corrupt { .. })
        ));
    }
}
