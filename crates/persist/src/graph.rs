//! `FrozenGraph` ⇄ snapshot sections.
//!
//! The on-disk layout mirrors [`FrozenGraph`]'s in-memory arrays
//! exactly, one section per flat array plus a small meta section with
//! the counters. Both [`dyngraph::StorageMode`]s have a codec:
//!
//! * **wide** — `graph.offsets`/`graph.nbr_offsets` as `u64`, ids and
//!   timestamps as raw `u32` (the format-version-1 layout, still
//!   written for wide graphs and still loaded unchanged);
//! * **compact** — `graph.c32.*` sections: `u32` offset arrays and the
//!   varint incident arena verbatim (added in format version 2).
//!
//! Decoding dispatches on which sections are present and funnels the
//! arrays through [`FrozenGraph::try_from_parts`] /
//! [`FrozenGraph::try_from_compact_parts`], so a graph that loads is a
//! graph whose every structural invariant has been re-proven —
//! checksums catch flipped bits, the validators catch a
//! consistent-looking but internally wrong CSR. A compact file decodes
//! to a compact in-memory graph and vice versa, and either loads into
//! bit-identical scores (the representations serve the same
//! [`GraphView`]).

use dyngraph::{
    CompactGraphParts, FrozenGraph, FrozenGraphParts, GraphView, RawStorage,
};

use crate::codec::{encode_u32s, encode_usizes, put_u32, put_u64, Cursor};
use crate::error::PersistError;
use crate::snapshot::{SnapshotReader, SnapshotWriter};

/// Section names for the graph payload.
pub const SEC_GRAPH_META: &str = "graph.meta";
/// Incident-link row bounds, `u64` each (wide layout).
pub const SEC_GRAPH_OFFSETS: &str = "graph.offsets";
/// Flat neighbor ids, `u32` each (wide layout).
pub const SEC_GRAPH_NEIGHBORS: &str = "graph.neighbors";
/// Flat timestamps, `u32` each, parallel to the neighbors (wide).
pub const SEC_GRAPH_TIMESTAMPS: &str = "graph.timestamps";
/// Distinct-neighbor row bounds, `u64` each (wide layout).
pub const SEC_GRAPH_NBR_OFFSETS: &str = "graph.nbr_offsets";
/// Flat distinct-neighbor ids, `u32` each (wide layout).
pub const SEC_GRAPH_NBR_IDS: &str = "graph.nbr_ids";
/// Incident-slot row bounds, `u32` each (compact layout).
pub const SEC_GRAPH_C32_SLOT_OFFSETS: &str = "graph.c32.slot_offsets";
/// Arena byte bounds, `u32` each (compact layout).
pub const SEC_GRAPH_C32_BYTE_OFFSETS: &str = "graph.c32.byte_offsets";
/// Varint-packed incident arena, raw bytes (compact layout).
pub const SEC_GRAPH_C32_ARENA: &str = "graph.c32.arena";
/// Distinct-neighbor row bounds, `u32` each (compact layout).
pub const SEC_GRAPH_C32_NBR_OFFSETS: &str = "graph.c32.nbr_offsets";
/// Flat distinct-neighbor ids, `u32` each (compact layout).
pub const SEC_GRAPH_C32_NBR_IDS: &str = "graph.c32.nbr_ids";

/// Writes `g` into `w` as `graph.*` sections matching its
/// [`storage mode`](FrozenGraph::storage_mode).
pub fn encode_graph(g: &FrozenGraph, w: &mut SnapshotWriter) {
    let (min_ts, max_ts) = g.raw_timestamp_bounds();
    let mut meta = Vec::with_capacity(8 * 3 + 4 * 2);
    put_u64(&mut meta, g.link_count() as u64);
    put_u64(&mut meta, g.node_count() as u64);
    put_u64(&mut meta, g.revision());
    put_u32(&mut meta, min_ts);
    put_u32(&mut meta, max_ts);
    w.section(SEC_GRAPH_META, meta);
    match g.raw_storage() {
        RawStorage::Wide {
            offsets,
            neighbors,
            timestamps,
            nbr_offsets,
            nbr_ids,
            ..
        } => {
            w.section(SEC_GRAPH_OFFSETS, encode_usizes(offsets));
            w.section(SEC_GRAPH_NEIGHBORS, encode_u32s(neighbors));
            w.section(SEC_GRAPH_TIMESTAMPS, encode_u32s(timestamps));
            w.section(SEC_GRAPH_NBR_OFFSETS, encode_usizes(nbr_offsets));
            w.section(SEC_GRAPH_NBR_IDS, encode_u32s(nbr_ids));
        }
        RawStorage::Compact {
            slot_offsets,
            byte_offsets,
            arena,
            nbr_offsets,
            nbr_ids,
            ..
        } => {
            w.section(SEC_GRAPH_C32_SLOT_OFFSETS, encode_u32s(slot_offsets));
            w.section(SEC_GRAPH_C32_BYTE_OFFSETS, encode_u32s(byte_offsets));
            w.section(SEC_GRAPH_C32_ARENA, arena.to_vec());
            w.section(SEC_GRAPH_C32_NBR_OFFSETS, encode_u32s(nbr_offsets));
            w.section(SEC_GRAPH_C32_NBR_IDS, encode_u32s(nbr_ids));
        }
        // `RawStorage` is non-exhaustive for future layouts; encoding
        // runs in-process against the same dyngraph version, so both
        // current arms are covered above.
        #[allow(unreachable_patterns)]
        _ => unreachable!("unknown frozen-graph storage layout"),
    }
}

/// Reads the `graph.*` sections of `r` back into a validated
/// [`FrozenGraph`], in whichever [`dyngraph::StorageMode`] the file
/// was written.
///
/// # Errors
///
/// Returns [`PersistError::Corrupt`] if any section is missing,
/// malformed, or the reassembled CSR violates a structural invariant.
pub fn decode_graph(r: &SnapshotReader) -> Result<FrozenGraph, PersistError> {
    let mut meta = Cursor::new(SEC_GRAPH_META, r.require(SEC_GRAPH_META)?);
    let num_links = meta.usize()?;
    let node_count = meta.usize()?;
    let revision = meta.u64()?;
    let min_ts = meta.u32()?;
    let max_ts = meta.u32()?;
    meta.finish()?;

    let read_usizes = |name: &'static str, count: usize| {
        let mut c = Cursor::new(name, r.require(name)?);
        let out = c.usizes(count)?;
        c.finish()?;
        Ok::<_, PersistError>(out)
    };
    let read_u32s = |name: &'static str, count: usize| {
        let mut c = Cursor::new(name, r.require(name)?);
        let out = c.u32s(count)?;
        c.finish()?;
        Ok::<_, PersistError>(out)
    };

    let corrupt_graph = |e: dyngraph::GraphError| PersistError::Corrupt {
        section: "graph".to_string(),
        detail: e.to_string(),
    };

    if r.section(SEC_GRAPH_C32_SLOT_OFFSETS).is_some() {
        let slot_offsets =
            read_u32s(SEC_GRAPH_C32_SLOT_OFFSETS, node_count + 1)?;
        let byte_offsets =
            read_u32s(SEC_GRAPH_C32_BYTE_OFFSETS, node_count + 1)?;
        let arena = r.require(SEC_GRAPH_C32_ARENA)?.to_vec();
        let nbr_offsets = read_u32s(SEC_GRAPH_C32_NBR_OFFSETS, node_count + 1)?;
        let nbr_count = nbr_offsets.last().copied().unwrap_or(0) as usize;
        let nbr_ids = read_u32s(SEC_GRAPH_C32_NBR_IDS, nbr_count)?;
        return FrozenGraph::try_from_compact_parts(CompactGraphParts {
            slot_offsets,
            byte_offsets,
            arena,
            nbr_offsets,
            nbr_ids,
            num_links,
            min_ts,
            max_ts,
            revision,
        })
        .map_err(corrupt_graph);
    }

    let offsets = read_usizes(SEC_GRAPH_OFFSETS, node_count + 1)?;
    let neighbors = read_u32s(SEC_GRAPH_NEIGHBORS, 2 * num_links)?;
    let timestamps = read_u32s(SEC_GRAPH_TIMESTAMPS, 2 * num_links)?;
    let nbr_offsets = read_usizes(SEC_GRAPH_NBR_OFFSETS, node_count + 1)?;
    let nbr_count = *nbr_offsets.last().unwrap_or(&0);
    let nbr_ids = read_u32s(SEC_GRAPH_NBR_IDS, nbr_count)?;

    FrozenGraph::try_from_parts(FrozenGraphParts {
        offsets,
        neighbors,
        timestamps,
        nbr_offsets,
        nbr_ids,
        num_links,
        min_ts,
        max_ts,
        revision,
    })
    .map_err(corrupt_graph)
}

#[cfg(test)]
mod tests {
    use dyngraph::{DynamicNetwork, StorageMode};

    use super::*;
    use crate::snapshot::SnapshotReader;

    fn network() -> DynamicNetwork {
        let mut g = DynamicNetwork::new();
        g.add_link(0, 1, 3);
        g.add_link(1, 2, 5);
        g.add_link(0, 1, 4);
        g.add_link(3, 1, 2);
        g.ensure_node(6);
        g
    }

    fn sample() -> FrozenGraph {
        FrozenGraph::from_view(&network())
    }

    fn sample_compact() -> FrozenGraph {
        FrozenGraph::from_view_with(&network(), StorageMode::Compact).unwrap()
    }

    fn round_trip(g: &FrozenGraph) -> FrozenGraph {
        let mut w = SnapshotWriter::new();
        encode_graph(g, &mut w);
        let r = SnapshotReader::from_bytes(&w.to_bytes()).unwrap();
        decode_graph(&r).unwrap()
    }

    #[test]
    fn graph_round_trips_bit_identically() {
        let g = sample();
        assert_eq!(round_trip(&g), g);
        let empty = FrozenGraph::empty();
        assert_eq!(round_trip(&empty), empty);
    }

    #[test]
    fn compact_graph_round_trips_in_compact_mode() {
        let g = sample_compact();
        let back = round_trip(&g);
        assert_eq!(back.storage_mode(), StorageMode::Compact);
        assert_eq!(back, g);
        // And logically equals the wide twin of the same network.
        assert_eq!(back, sample());
    }

    #[test]
    fn compact_sections_are_smaller_than_wide_sections() {
        let mut dense = DynamicNetwork::new();
        for i in 0..400u32 {
            let u = i % 97;
            dense.add_link(u, (u + 1 + i % 7) % 97, i / 4);
        }
        let mut ww = SnapshotWriter::new();
        encode_graph(
            &FrozenGraph::from_view_with(&dense, StorageMode::Wide).unwrap(),
            &mut ww,
        );
        let mut cw = SnapshotWriter::new();
        encode_graph(
            &FrozenGraph::from_view_with(&dense, StorageMode::Compact).unwrap(),
            &mut cw,
        );
        assert!(
            cw.to_bytes().len() < ww.to_bytes().len(),
            "compact file {} >= wide file {}",
            cw.to_bytes().len(),
            ww.to_bytes().len()
        );
    }

    #[test]
    fn payload_corruption_is_typed_not_panicking() {
        for g in [sample(), sample_compact()] {
            let mut w = SnapshotWriter::new();
            encode_graph(&g, &mut w);
            let bytes = w.to_bytes();
            for i in 0..bytes.len() {
                let mut bad = bytes.clone();
                bad[i] = bad[i].wrapping_add(1);
                let outcome = SnapshotReader::from_bytes(&bad)
                    .and_then(|r| decode_graph(&r));
                match outcome {
                    Err(PersistError::Corrupt { .. }) => {}
                    Err(other) => panic!("byte {i}: unexpected {other}"),
                    Ok(got) => assert_eq!(
                        got, g,
                        "byte {i} silently changed the graph"
                    ),
                }
            }
        }
    }

    #[test]
    fn cross_section_lies_are_caught_by_the_validator() {
        // A snapshot whose sections each checksum fine but which
        // disagree with each other: claim one fewer link than the
        // arrays hold. Exercised for both storage layouts.
        for g in [sample(), sample_compact()] {
            let mut w = SnapshotWriter::new();
            encode_graph(&g, &mut w);
            let mut r = SnapshotReader::from_bytes(&w.to_bytes()).unwrap();
            let (min_ts, max_ts) = g.raw_timestamp_bounds();
            let mut meta = Vec::new();
            crate::codec::put_u64(&mut meta, g.link_count() as u64 - 1);
            crate::codec::put_u64(&mut meta, g.node_count() as u64);
            crate::codec::put_u64(&mut meta, g.revision());
            crate::codec::put_u32(&mut meta, min_ts);
            crate::codec::put_u32(&mut meta, max_ts);
            let mut lying = SnapshotWriter::new();
            lying.section(SEC_GRAPH_META, meta);
            for name in
                r.section_names().map(str::to_string).collect::<Vec<_>>()
            {
                if name != SEC_GRAPH_META {
                    lying.section(&name, r.require(&name).unwrap().to_vec());
                }
            }
            r = SnapshotReader::from_bytes(&lying.to_bytes()).unwrap();
            assert!(matches!(
                decode_graph(&r),
                Err(PersistError::Corrupt { .. })
            ));
        }
    }
}
