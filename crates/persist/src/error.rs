use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced by the durability layer.
///
/// The contract mirrors the rest of the pipeline: corruption is a
/// *typed* outcome, never a panic, and it names the section that failed
/// so operators can tell a torn WAL tail from a damaged snapshot.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// Stored bytes failed validation — bad magic, checksum mismatch,
    /// truncated record, out-of-order sequence number, or a decoded
    /// structure that violates its own invariants.
    Corrupt {
        /// Which part of the on-disk state failed (`"header"`,
        /// `"graph.offsets"`, `"wal"`, …).
        section: String,
        /// Human-readable description of the violation.
        detail: String,
    },
}

/// Shorthand constructor for [`PersistError::Corrupt`].
pub(crate) fn corrupt(
    section: impl Into<String>,
    detail: impl Into<String>,
) -> PersistError {
    PersistError::Corrupt {
        section: section.into(),
        detail: detail.into(),
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persist i/o error: {e}"),
            PersistError::Corrupt { section, detail } => {
                write!(f, "corrupt {section}: {detail}")
            }
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_section() {
        let e = corrupt("graph.offsets", "checksum mismatch");
        assert_eq!(e.to_string(), "corrupt graph.offsets: checksum mismatch");
        let e = PersistError::from(io::Error::other("disk on fire"));
        assert!(e.to_string().starts_with("persist i/o error: "));
    }

    #[test]
    fn io_errors_keep_their_source() {
        let e = PersistError::from(io::Error::other("boom"));
        assert!(e.source().is_some());
        let e = corrupt("wal", "torn tail");
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PersistError>();
    }
}
