//! The `SSF1` snapshot container: versioned, sectioned, checksummed.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   "SSF1"                          4 bytes
//! version u32 (currently 1)               4 bytes
//! count   u32 section count               4 bytes
//! section, repeated `count` times:
//!   name_len u8, name (ASCII)             1 + name_len bytes
//!   len      u64 payload length           8 bytes
//!   payload                               len bytes
//!   crc      u32 CRC-32 of payload        4 bytes
//! ```
//!
//! Sections are opaque byte strings to the container; the graph and
//! predictor codecs layer meaning on top. Readers validate the magic,
//! the version, every length and every checksum *before* returning, so
//! a successfully opened [`SnapshotReader`] holds only verified bytes.
//! Writers go through [`SnapshotWriter::write_atomic`] — temp file,
//! fsync, rename, directory fsync — so a crash mid-write leaves either
//! the old snapshot or none, never a half-written one.

use std::fs::{self, File};
use std::io::Write as _;
use std::path::Path;

use crate::codec::{put_u32, put_u64, Cursor};
use crate::crc::crc32;
use crate::error::{corrupt, PersistError};

/// File magic: the first four bytes of every snapshot.
pub const MAGIC: [u8; 4] = *b"SSF1";
/// Current container format version. Version 2 added the compact-CSR
/// graph sections (`graph.c32.*`); version 3 added the optional
/// sliding-window section (`pmeta.window`). The section container
/// itself is unchanged, so readers accept every version down to
/// [`MIN_VERSION`].
pub const VERSION: u32 = 3;
/// Oldest container format version this reader still loads.
pub const MIN_VERSION: u32 = 1;

/// Assembles a snapshot in memory, then persists it atomically.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotWriter {
    /// An empty snapshot with no sections.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a named section. Names must be unique, non-empty ASCII
    /// of at most 255 bytes; the codecs in this crate all comply, so
    /// violations are programmer errors and panic in debug builds.
    pub fn section(&mut self, name: &str, payload: Vec<u8>) {
        debug_assert!(
            !name.is_empty() && name.len() <= 255 && name.is_ascii(),
            "section name {name:?} violates the container contract"
        );
        debug_assert!(
            self.sections.iter().all(|(n, _)| n != name),
            "duplicate section {name:?}"
        );
        self.sections.push((name.to_string(), payload));
    }

    /// Serializes the container to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        put_u32(&mut buf, VERSION);
        put_u32(&mut buf, self.sections.len() as u32);
        for (name, payload) in &self.sections {
            buf.push(name.len() as u8);
            buf.extend_from_slice(name.as_bytes());
            put_u64(&mut buf, payload.len() as u64);
            buf.extend_from_slice(payload);
            put_u32(&mut buf, crc32(payload));
        }
        buf
    }

    /// Writes the snapshot to `path` atomically: the bytes land in a
    /// sibling temp file, are fsynced, renamed over `path`, and the
    /// directory entry is fsynced too. Readers therefore observe either
    /// the previous complete snapshot or the new complete snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] if any filesystem step fails.
    pub fn write_atomic(&self, path: &Path) -> Result<(), PersistError> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            // Persist the rename itself; harmless no-op on filesystems
            // that do not support directory fsync.
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }
}

/// A fully validated, in-memory snapshot.
#[derive(Debug)]
pub struct SnapshotReader {
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotReader {
    /// Reads and validates a snapshot file.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] if the file cannot be read;
    /// [`PersistError::Corrupt`] if the magic, version, any length or
    /// any section checksum fails validation.
    pub fn open(path: &Path) -> Result<Self, PersistError> {
        Self::from_bytes(&fs::read(path)?)
    }

    /// Validates snapshot bytes already in memory.
    ///
    /// # Errors
    ///
    /// See [`SnapshotReader::open`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        let mut c = Cursor::new("header", bytes);
        let magic = c.u32()?.to_le_bytes();
        if magic != MAGIC {
            return Err(corrupt(
                "header",
                format!("bad magic {magic:02X?}, want {MAGIC:02X?}"),
            ));
        }
        let version = c.u32()?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(corrupt(
                "header",
                format!(
                    "unsupported format version {version} (supported: \
                     {MIN_VERSION}..={VERSION})"
                ),
            ));
        }
        let count = c.u32()? as usize;
        let mut sections: Vec<(String, Vec<u8>)> = Vec::new();
        let mut rest = &bytes[12..];
        for i in 0..count {
            let (name, payload, tail) = Self::read_section(rest, i)?;
            if sections.iter().any(|(n, _)| *n == name) {
                return Err(corrupt(
                    "header",
                    format!("duplicate section {name:?}"),
                ));
            }
            sections.push((name, payload));
            rest = tail;
        }
        if !rest.is_empty() {
            return Err(corrupt(
                "header",
                format!("{} trailing bytes after last section", rest.len()),
            ));
        }
        Ok(SnapshotReader { sections })
    }

    /// Decodes one section, returning `(name, payload, rest)`.
    fn read_section(
        bytes: &[u8],
        index: usize,
    ) -> Result<(String, Vec<u8>, &[u8]), PersistError> {
        let section = format!("section[{index}]");
        let fail = |detail: String| corrupt(section.clone(), detail);
        let (&name_len, rest) = bytes
            .split_first()
            .ok_or_else(|| fail("truncated before name".to_string()))?;
        let name_len = name_len as usize;
        if rest.len() < name_len + 8 {
            return Err(fail("truncated name or length".to_string()));
        }
        let name = std::str::from_utf8(&rest[..name_len])
            .map_err(|_| fail("section name is not UTF-8".to_string()))?
            .to_string();
        let rest = &rest[name_len..];
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&rest[..8]);
        let len = usize::try_from(u64::from_le_bytes(len_bytes))
            .map_err(|_| fail("payload length overflows usize".to_string()))?;
        let rest = &rest[8..];
        // `len` comes straight off the disk: the +4 must not wrap on
        // lengths near usize::MAX, or the bounds check below would
        // pass and the slice would panic.
        let total = match len.checked_add(4) {
            Some(total) if rest.len() >= total => total,
            _ => {
                return Err(fail(format!(
                    "payload of {name:?} truncated: want {len} + 4 \
                     bytes, have {}",
                    rest.len()
                )));
            }
        };
        let payload = rest[..len].to_vec();
        let mut crc_bytes = [0u8; 4];
        crc_bytes.copy_from_slice(&rest[len..total]);
        let want = u32::from_le_bytes(crc_bytes);
        let got = crc32(&payload);
        if got != want {
            return Err(corrupt(
                name,
                format!(
                    "checksum mismatch: stored {want:08X}, \
                         computed {got:08X}"
                ),
            ));
        }
        Ok((name, payload, &rest[total..]))
    }

    /// The payload of section `name`, if present.
    pub fn section(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_slice())
    }

    /// The payload of section `name`, or a typed corruption error.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Corrupt`] if the section is absent.
    pub fn require(&self, name: &str) -> Result<&[u8], PersistError> {
        self.section(name)
            .ok_or_else(|| corrupt(name, "section missing"))
    }

    /// Names of all sections, in file order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotWriter {
        let mut w = SnapshotWriter::new();
        w.section("alpha", vec![1, 2, 3]);
        w.section("beta", Vec::new());
        w.section("gamma", (0..=255).collect());
        w
    }

    #[test]
    fn round_trips_sections() {
        let bytes = sample().to_bytes();
        let r = SnapshotReader::from_bytes(&bytes).unwrap();
        assert_eq!(r.section("alpha"), Some(&[1u8, 2, 3][..]));
        assert_eq!(r.section("beta"), Some(&[][..]));
        assert_eq!(r.require("gamma").unwrap().len(), 256);
        assert!(r.section("delta").is_none());
        assert!(r.require("delta").is_err());
        let names: Vec<_> = r.section_names().collect();
        assert_eq!(names, ["alpha", "beta", "gamma"]);
    }

    #[test]
    fn every_single_byte_flip_is_caught_or_harmless() {
        // Flipping any one byte must either still decode to the exact
        // same sections (impossible here — every byte is load-bearing)
        // or fail with a typed Corrupt. Never a panic, never silently
        // different content.
        let bytes = sample().to_bytes();
        let original = SnapshotReader::from_bytes(&bytes).unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            match SnapshotReader::from_bytes(&bad) {
                Err(PersistError::Corrupt { .. }) => {}
                Err(other) => panic!("byte {i}: unexpected {other}"),
                Ok(r) => {
                    // A flip inside a name byte can only survive if it
                    // produced a different (still checksummed) section
                    // name; content must be unchanged.
                    let a: Vec<_> = original
                        .sections
                        .iter()
                        .map(|(_, p)| p.clone())
                        .collect();
                    let b: Vec<_> =
                        r.sections.iter().map(|(_, p)| p.clone()).collect();
                    assert_eq!(a, b, "byte {i} silently altered payloads");
                }
            }
        }
    }

    #[test]
    fn truncations_never_panic() {
        let bytes = sample().to_bytes();
        for keep in 0..bytes.len() {
            let r = SnapshotReader::from_bytes(&bytes[..keep]);
            assert!(r.is_err(), "prefix of {keep} bytes decoded");
        }
    }

    #[test]
    fn atomic_write_then_open() {
        let dir = std::env::temp_dir()
            .join(format!("ssf-persist-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.ssf1");
        sample().write_atomic(&path).unwrap();
        let r = SnapshotReader::open(&path).unwrap();
        assert_eq!(r.section("alpha"), Some(&[1u8, 2, 3][..]));
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_section_length_is_corrupt_not_panic() {
        // A length near u64::MAX must not wrap the `len + 4` bounds
        // check (it used to, slicing out of range in release builds).
        for len in [u64::MAX, u64::MAX - 3, u64::MAX - 4, 1 << 40] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&MAGIC);
            put_u32(&mut bytes, VERSION);
            put_u32(&mut bytes, 1); // one section
            bytes.push(1);
            bytes.push(b'a');
            put_u64(&mut bytes, len);
            bytes.extend_from_slice(&[0u8; 16]); // far fewer than `len`
            let err = SnapshotReader::from_bytes(&bytes)
                .expect_err("absurd length must not decode");
            assert!(matches!(err, PersistError::Corrupt { .. }), "{err}");
        }
    }

    #[test]
    fn reads_every_supported_back_version() {
        // A file stamped with any older supported version must decode
        // exactly like the current one — the container layout never
        // changed, only which sections writers emit.
        for version in MIN_VERSION..VERSION {
            let mut bytes = sample().to_bytes();
            bytes[4..8].copy_from_slice(&version.to_le_bytes());
            let r = SnapshotReader::from_bytes(&bytes)
                .unwrap_or_else(|e| panic!("version {version}: {e}"));
            assert_eq!(r.section("alpha"), Some(&[1u8, 2, 3][..]));
        }
    }

    #[test]
    fn rejects_wrong_magic_and_version() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            SnapshotReader::from_bytes(&bytes),
            Err(PersistError::Corrupt { .. })
        ));
        let mut bytes = sample().to_bytes();
        bytes[4] = 9; // version 9
        let err = SnapshotReader::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("version 9"), "{err}");
    }
}
