//! Durable predictor state for the SSF serving stack.
//!
//! Two cooperating formats:
//!
//! * [`snapshot`] — the `SSF1` container: a versioned, sectioned,
//!   per-section-CRC32 binary file whose `graph.*` sections are the
//!   flat little-endian image of a [`dyngraph::FrozenGraph`] CSR.
//!   Loading validates every checksum *and* re-proves every structural
//!   invariant before anything reaches the scoring path.
//! * [`wal`] — a segmented, length-prefixed, checksummed write-ahead
//!   log of the ingest stream with strict sequence continuity, a
//!   configurable [`FsyncPolicy`] and torn-tail-tolerant [`replay`].
//!
//! The durability protocol built on top (see `ssf-repro`'s
//! `stream::OnlineLinkPredictor::with_durability`):
//!
//! ```text
//! observe(u, v, t)   → WAL append (seq n)  → in-memory mutation
//! checkpoint()       → snapshot-<rev>-<seq>.ssf1 (atomic rename)
//!                    → WAL segments below seq deleted
//! open(dir)          → newest valid snapshot + WAL tail replay
//! ```
//!
//! Corruption anywhere is a typed [`PersistError::Corrupt`] or an
//! honestly-reported truncated tail — never a panic, never silently
//! wrong state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod crc;
mod error;
pub mod graph;
pub mod snapshot;
pub mod wal;

pub use crc::crc32;
pub use error::PersistError;
pub use graph::{decode_graph, encode_graph};
pub use snapshot::{SnapshotReader, SnapshotWriter};
pub use wal::{
    list_segments, replay, FsyncPolicy, ReplayReport, ReplayStep, WalOp,
    WalOptions, WalRecord, WalWriter,
};
