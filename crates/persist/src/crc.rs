//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! Table-driven, built at compile time — no dependency, no runtime
//! initialization. This is the checksum every snapshot section and WAL
//! record carries; the exact parameters match the ubiquitous zlib/PNG
//! CRC so fixtures can be cross-checked with any external tool.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Streaming CRC-32 state, for writers that checksum as they go.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32 { state: !0 }
    }
}

impl Crc32 {
    /// A fresh checksum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds `bytes` through the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let i = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[i];
        }
    }

    /// The final checksum value.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let data = vec![0xA5u8; 64];
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "byte {i} bit {bit}");
            }
        }
    }
}
