//! `ssf` — command-line interface to the reproduction.
//!
//! ```console
//! $ ssf stats network.txt
//! $ ssf generate coauthor --scale 0.3 --seed 7 --out net.txt
//! $ ssf extract network.txt 12 57 --k 10
//! $ ssf roles network.txt 12 57
//! $ ssf patterns network.txt --samples 500 --k 10
//! $ ssf evaluate network.txt --methods cn,katz,ssflr,ssfnm
//! $ ssf serve network.txt --shards 4 --threads 4
//! ```
//!
//! Edge lists are whitespace-separated `u v t` lines (KONECT style; see
//! `dyngraph::io`).

use std::fs::File;
use std::io::BufReader;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use ssf_repro::baselines;
use ssf_repro::datasets::DatasetSpec;
use ssf_repro::dyngraph::{
    io, metrics, stats::NetworkStats, DynamicNetwork, StorageMode,
};
use ssf_repro::methods::{Method, MethodOptions};
use ssf_repro::model::SsfnmModel;
use ssf_repro::obs::{ObsHandle, Registry};
use ssf_repro::ssf_core::{
    ExtractionCache, HopSubgraph, PatternMiner, RoleAnalysis, SsfConfig,
    SsfExtractor, StructureSubgraph,
};
use ssf_repro::ssf_eval::{
    backtest_splits, BacktestConfig, ResultsTable, Split, SplitConfig,
};
use ssf_repro::{
    CoalesceConfig, Coalescer, DurabilityPolicy, FsyncPolicy,
    OnlineLinkPredictor, OnlinePredictorConfig, ShardedPredictor, SystemClock,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_json = flag(&args, "--metrics-json");
    let metrics_stderr = args.iter().any(|a| a == "--metrics-stderr");
    let registry = (metrics_json.is_some() || metrics_stderr)
        .then(|| Arc::new(Registry::new()));
    let obs = registry.as_ref().map_or_else(ObsHandle::noop, |r| {
        ObsHandle::of_registry(Arc::clone(r))
    });
    let result = dispatch(&args, &obs);
    if let Some(registry) = registry {
        let json = registry.snapshot().to_json();
        if metrics_stderr {
            eprint!("{json}");
        }
        if let Some(path) = metrics_json {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("warning: cannot write metrics to {path}: {e}");
            }
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the selected subcommand under its `ssf.cli.<subcommand>` span.
fn dispatch(args: &[String], obs: &ObsHandle) -> Result<(), String> {
    let span = obs.span(match args.first().map(String::as_str) {
        Some("stats") => "ssf.cli.stats",
        Some("generate") => "ssf.cli.generate",
        Some("extract") => "ssf.cli.extract",
        Some("roles") => "ssf.cli.roles",
        Some("patterns") => "ssf.cli.patterns",
        Some("evaluate") => "ssf.cli.evaluate",
        Some("train") => "ssf.cli.train",
        Some("predict") => "ssf.cli.predict",
        Some("serve") => "ssf.cli.serve",
        Some("serve-loop") => "ssf.cli.serve_loop",
        Some("save") => "ssf.cli.save",
        Some("restore") => "ssf.cli.restore",
        _ => "ssf.cli.other",
    });
    let result = match args.first().map(String::as_str) {
        Some("stats") => cmd_stats(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("extract") => cmd_extract(&args[1..], obs),
        Some("roles") => cmd_roles(&args[1..]),
        Some("patterns") => cmd_patterns(&args[1..], obs),
        Some("evaluate") => cmd_evaluate(&args[1..], obs),
        Some("train") => cmd_train(&args[1..], obs),
        Some("predict") => cmd_predict(&args[1..]),
        Some("serve") => cmd_serve(&args[1..], obs),
        Some("serve-loop") => cmd_serve_loop(&args[1..], obs),
        Some("save") => cmd_save(&args[1..], obs),
        Some("restore") => cmd_restore(&args[1..], obs),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}; try --help")),
    };
    span.finish();
    result
}

fn print_usage() {
    println!(
        "ssf — Structure Subgraph Feature link prediction (ICDCS 2019 reproduction)

USAGE:
  ssf stats    <edge-list>                     network statistics
  ssf generate <dataset> [--scale F] [--seed N] [--out FILE]
                                               synthetic Table II dataset
  ssf extract  <edge-list> <u> <v> [--k N] [--dot]
                                               SSF vector (+GraphViz DOT) of a pair
  ssf roles    <edge-list> <u> <v> [--h N]     structure-node role analysis
  ssf patterns <edge-list> [--samples N] [--k N]
                                               frequent K-structure patterns
  ssf evaluate <edge-list> [--methods a,b] [--k N] [--seed N]
                                               AUC/F1 of the Table III methods
  ssf train    <edge-list> --out MODEL [--k N] [--epochs N]
                                               fit SSFNM, persist the model
  ssf predict  <edge-list> <model> <u> <v>     score a pair with a saved model
  ssf serve    <edge-list> [--shards N] [--threads N] [--pairs N] [--k N]
               [--epochs N] [--seed N] [--window W]
                                               replay the stream through the
                                               sharded serving path, publish a
                                               snapshot, score candidates in
                                               parallel, report health
  ssf serve-loop <edge-list> [--qps N] [--duration-ms N] [--clients N]
               [--max-batch N] [--max-delay-us N] [--queue N]
               [--deadline-us N] [--shards N] [--threads N] [--k N]
               [--epochs N] [--seed N] [--window W]
               [--arrivals closed|fixed|poisson]
                                               run the request-coalescing
                                               front-end under load and
                                               report the SLO (p50/p99, miss
                                               rate, batch size, sheds);
                                               closed-loop clients wait for
                                               each ticket (--qps 0 is
                                               unpaced), open-loop arrivals
                                               (fixed-rate or Poisson,
                                               --qps required) follow their
                                               schedule regardless of
                                               completions — the honest
                                               overload model
  ssf save     <edge-list> --dir DIR [--k N] [--epochs N] [--seed N]
               [--refit-every N] [--fsync always|never|N]
               [--storage auto|wide|compact] [--window W] [--advance T]
                                               ingest through a durable
                                               predictor (WAL per event) and
                                               checkpoint one SSF1 snapshot;
                                               --storage picks the frozen
                                               graph layout (auto = by size),
                                               --advance pushes the horizon
                                               to T (expiring aged links)
                                               before the checkpoint
  ssf restore  --dir DIR [--strict] [--at-revision N] [--score U,V]
               [--k N] [--epochs N] [--seed N] [--refit-every N]
               [--window W] [--advance T]      recover snapshot + WAL tail;
                                               --strict fails if anything was
                                               dropped, --at-revision rewinds

Sliding windows: --window W keeps only links stamped in the inclusive
range [horizon - W, horizon]; older links expire as the horizon advances
(implicitly with newer events, or explicitly via --advance). The durable
state records its window, so save and restore must agree on --window.

Global flags (any subcommand):
  --metrics-json PATH   write an ssf.metrics.v1 JSON snapshot of pipeline
                        telemetry (span timings, counters, histograms)
  --metrics-stderr      print the same snapshot to stderr

Datasets: eu-email contact facebook coauthor prosper slashdot digg"
    );
}

/// Reads an edge list leniently by default: malformed lines are
/// quarantined with a `warning:` summary on stderr and the healthy rest
/// of the file is served. `--strict` restores fail-fast parsing (first
/// bad line is a fatal `error:`).
fn load(path: &str, args: &[String]) -> Result<DynamicNetwork, String> {
    let file =
        File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let reader = BufReader::new(file);
    if args.iter().any(|a| a == "--strict") {
        return io::read_edge_list(reader).map_err(|e| e.to_string());
    }
    let report = io::read_edge_list_lossy(reader);
    if !report.rejected.is_empty() {
        eprintln!(
            "warning: {path}: quarantined {} of {} data lines",
            report.rejected.len(),
            report.accepted + report.rejected.len()
        );
        const SHOWN: usize = 5;
        for r in report.rejected.iter().take(SHOWN) {
            eprintln!("warning:   line {}: {}", r.line, r.reason);
        }
        if report.rejected.len() > SHOWN {
            eprintln!(
                "warning:   … and {} more",
                report.rejected.len() - SHOWN
            );
        }
    }
    Ok(report.network)
}

/// Tiny flag parser: `--name value` pairs after the positional arguments.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    name: &str,
    default: T,
) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for {name}: {v:?}")),
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: ssf stats <edge-list>")?;
    let g = load(path, args)?;
    let s = NetworkStats::of(&g);
    let stat = g.to_static();
    println!("{s}");
    println!("distinct edges:        {}", stat.edge_count());
    println!(
        "multi-link ratio:      {:.2}",
        g.link_count() as f64 / stat.edge_count().max(1) as f64
    );
    println!(
        "global clustering:     {:.4}",
        metrics::global_clustering(&stat)
    );
    println!("degree gini (hubness): {:.4}", metrics::degree_gini(&stat));
    let comps = metrics::connected_components(&stat);
    println!(
        "components:            {} (largest {})",
        comps.len(),
        comps.first().map_or(0, Vec::len)
    );
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("usage: ssf generate <dataset>")?;
    let spec = DatasetSpec::paper_datasets()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown dataset {name:?}"))?;
    let scale: f64 = parse_flag(args, "--scale", 1.0)?;
    let seed: u64 = parse_flag(args, "--seed", 7)?;
    let spec = if scale < 1.0 {
        spec.scaled(scale)
    } else {
        spec
    };
    let g = spec.generate(seed);
    match flag(args, "--out") {
        Some(path) => {
            let mut file = File::create(&path)
                .map_err(|e| format!("cannot create {path}: {e}"))?;
            io::write_edge_list(&g, &mut file).map_err(|e| e.to_string())?;
            println!("wrote {} links to {path}", g.link_count());
        }
        None => {
            io::write_edge_list(&g, std::io::stdout().lock())
                .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn parse_pair(args: &[String]) -> Result<(String, u32, u32), String> {
    let path = args.first().ok_or("missing edge-list path")?.clone();
    let u: u32 = args
        .get(1)
        .ok_or("missing node u")?
        .parse()
        .map_err(|_| "node u must be an integer")?;
    let v: u32 = args
        .get(2)
        .ok_or("missing node v")?
        .parse()
        .map_err(|_| "node v must be an integer")?;
    Ok((path, u, v))
}

fn cmd_extract(args: &[String], obs: &ObsHandle) -> Result<(), String> {
    let (path, u, v) = parse_pair(args)?;
    let k: usize = parse_flag(args, "--k", 10)?;
    let g = load(&path, args)?;
    let n = g.node_count() as u32;
    if u >= n || v >= n || u == v {
        return Err(format!("invalid target pair ({u}, {v}) for {n} nodes"));
    }
    let l_t = g.max_timestamp().ok_or("network has no links")? + 1;
    let ex = SsfExtractor::new(SsfConfig::new(k));
    // A recorder-carrying cache routes the ssf.core.* stage spans into the
    // metrics snapshot; scores are bit-identical to the uncached path.
    let mut cache = ExtractionCache::with_recorder(obs.clone());
    let f = ex
        .try_extract_cached(&g, u, v, l_t, &mut cache)
        .map_err(|e| e.to_string())?;
    println!(
        "SSF({u}-{v}) K={k} h={} |V_S|={} dim={}",
        f.radius(),
        f.structure_node_count(),
        f.values().len()
    );
    let formatted: Vec<String> =
        f.values().iter().map(|x| format!("{x:.4}")).collect();
    println!("[{}]", formatted.join(", "));
    if args.iter().any(|a| a == "--dot") {
        let (ks, _, _) = ex.k_structure(&g, u, v);
        println!();
        print!("{}", ssf_repro::ssf_core::viz::to_dot(&ks, None));
    }
    Ok(())
}

fn cmd_roles(args: &[String]) -> Result<(), String> {
    let (path, u, v) = parse_pair(args)?;
    let h: u32 = parse_flag(args, "--h", 1)?;
    let g = load(&path, args)?;
    let n = g.node_count() as u32;
    if u >= n || v >= n || u == v {
        return Err(format!("invalid target pair ({u}, {v}) for {n} nodes"));
    }
    let hop = HopSubgraph::extract(&g, u, v, h);
    let s = StructureSubgraph::combine(&hop);
    print!("{}", RoleAnalysis::analyze(&hop, &s));
    Ok(())
}

fn cmd_patterns(args: &[String], obs: &ObsHandle) -> Result<(), String> {
    let path = args.first().ok_or("usage: ssf patterns <edge-list>")?;
    let samples: usize = parse_flag(args, "--samples", 500)?;
    let k: usize = parse_flag(args, "--k", 10)?;
    let g = load(path, args)?;
    let pairs: Vec<(u32, u32)> = g
        .to_static()
        .edges()
        .map(|(u, v, _)| (u, v))
        .take(samples)
        .collect();
    let ex = SsfExtractor::new(SsfConfig::new(k));
    let mut cache = ExtractionCache::with_recorder(obs.clone());
    let mut miner = PatternMiner::new();
    for &(u, v) in &pairs {
        let p = ex
            .try_k_structure_cached(&g, u, v, &mut cache)
            .map_err(|e| e.to_string())?;
        miner.observe(&p.ks);
    }
    println!(
        "{} observations, {} distinct patterns",
        miner.observations(),
        miner.distinct_patterns()
    );
    for (rank, (sig, count)) in miner.ranked().into_iter().take(3).enumerate() {
        println!("#{} ({count} occurrences):", rank + 1);
        println!("{sig}");
    }
    Ok(())
}

fn cmd_train(args: &[String], obs: &ObsHandle) -> Result<(), String> {
    let path = args
        .first()
        .ok_or("usage: ssf train <edge-list> --out MODEL")?;
    let out = flag(args, "--out").ok_or("--out MODEL required")?;
    let g = load(path, args)?;
    let seed: u64 = parse_flag(args, "--seed", 7)?;
    let opts = MethodOptions {
        k: parse_flag(args, "--k", 10)?,
        nm_epochs: parse_flag(args, "--epochs", 200)?,
        seed,
        ..MethodOptions::default()
    };
    let split = Split::with_min_positives(
        &g,
        &SplitConfig {
            seed,
            max_positives: Some(400),
            ..SplitConfig::default()
        },
        50,
    )
    .map_err(|e| e.to_string())?;
    let extra = backtest_splits(
        &split.history,
        &BacktestConfig {
            split: SplitConfig {
                seed,
                max_positives: Some(400),
                ..SplitConfig::default()
            },
            folds: 3,
            stride: 1,
            min_positives: 25,
        },
    )
    .unwrap_or_default();
    let model = SsfnmModel::try_fit_observed(&split, &extra, &opts, obs)
        .map_err(|e| e.to_string())?;
    let file =
        File::create(&out).map_err(|e| format!("cannot create {out}: {e}"))?;
    model
        .save(std::io::BufWriter::new(file))
        .map_err(|e| e.to_string())?;
    let r = Method::Ssfnm.evaluate_augmented(&split, &extra, &opts);
    println!(
        "trained SSFNM on {} samples (held-out AUC {:.3}, F1 {:.3}); wrote {out}",
        split.train.len(),
        r.auc,
        r.f1
    );
    Ok(())
}

fn cmd_predict(args: &[String]) -> Result<(), String> {
    let net_path = args
        .first()
        .ok_or("usage: ssf predict <edge-list> <model> <u> <v>")?;
    let model_path = args.get(1).ok_or("missing model path")?;
    let u: u32 = args
        .get(2)
        .ok_or("missing node u")?
        .parse()
        .map_err(|_| "node u must be an integer")?;
    let v: u32 = args
        .get(3)
        .ok_or("missing node v")?
        .parse()
        .map_err(|_| "node v must be an integer")?;
    let g = load(net_path, args)?;
    let n = g.node_count() as u32;
    if u >= n || v >= n || u == v {
        return Err(format!("invalid target pair ({u}, {v}) for {n} nodes"));
    }
    let file = File::open(model_path)
        .map_err(|e| format!("cannot open {model_path}: {e}"))?;
    let model =
        SsfnmModel::load(BufReader::new(file)).map_err(|e| e.to_string())?;
    let present = g.max_timestamp().ok_or("network has no links")? + 1;
    let p = model
        .try_score(&g, u, v, present)
        .map_err(|e| e.to_string())?;
    println!("P(link {u}-{v} emerges at t={present}) = {p:.4}");
    Ok(())
}

/// Replays an edge list through the sharded single-writer ingest path,
/// publishes an immutable snapshot and scores a deterministic candidate
/// batch on the parallel read path, checking it bit-matches the serial
/// path before reporting throughput and merged health.
fn cmd_serve(args: &[String], obs: &ObsHandle) -> Result<(), String> {
    let path = args.first().ok_or("usage: ssf serve <edge-list>")?;
    let g = load(path, args)?;
    let shards: usize = parse_flag(args, "--shards", 1)?;
    let threads: usize = parse_flag(args, "--threads", 4)?;
    let n_pairs: u32 = parse_flag(args, "--pairs", 256)?;
    let seed: u64 = parse_flag(args, "--seed", 7)?;
    let opts = MethodOptions {
        k: parse_flag(args, "--k", 10)?,
        nm_epochs: parse_flag(args, "--epochs", 40)?,
        seed,
        ..MethodOptions::default()
    };
    let config = OnlinePredictorConfig::builder()
        .method(opts)
        .refit_every(u32::MAX) // one deliberate refit after ingest
        .window(window_width(args)?)
        .build()
        .map_err(|e| e.to_string())?;
    let mut sharded =
        ShardedPredictor::with_recorder(config, shards, obs.clone())
            .map_err(|e| e.to_string())?;

    let mut events: Vec<_> = g.links().map(|l| (l.u, l.v, l.t)).collect();
    events.sort_by_key(|&(_, _, t)| t);
    let t0 = Instant::now();
    let accepted = sharded.observe_batch_parallel(&events);
    let ingest_secs = t0.elapsed().as_secs_f64();
    println!(
        "ingested {accepted} of {} events over {shards} shard(s) \
         in {ingest_secs:.3}s ({:.0} events/s)",
        events.len(),
        accepted as f64 / ingest_secs.max(1e-9),
    );
    if let Err(e) = sharded.try_refit_all() {
        eprintln!("warning: serving degraded, refit failed: {e}");
    }

    let snap = sharded.snapshot();
    let n = g.node_count() as u32;
    if n < 2 {
        return Err("network too small to serve".into());
    }
    // Deterministic candidate sweep: strided pairs across the node space.
    let pairs: Vec<(u32, u32)> = (0..n_pairs)
        .map(|i| {
            let u = i.wrapping_mul(7).wrapping_add(seed as u32) % n;
            let v = i.wrapping_mul(11).wrapping_add(1) % n;
            if u == v {
                (u, (v + 1) % n)
            } else {
                (u, v)
            }
        })
        .collect();

    let t0 = Instant::now();
    let serial = snap.score_batch(&pairs);
    let serial_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let parallel = snap.score_batch_parallel(&pairs, threads);
    let parallel_secs = t0.elapsed().as_secs_f64();
    let identical = serial
        .iter()
        .zip(&parallel)
        .all(|(a, b)| a.map(f64::to_bits) == b.map(f64::to_bits));
    if !identical {
        return Err("parallel scores diverged from the serial path".into());
    }

    let scored = parallel.iter().filter(|s| s.is_some()).count();
    println!(
        "scored {} pairs ({scored} with a model): serial {:.1} pairs/s, \
         parallel x{threads} {:.1} pairs/s ({:.2}x), bit-identical",
        pairs.len(),
        pairs.len() as f64 / serial_secs.max(1e-9),
        pairs.len() as f64 / parallel_secs.max(1e-9),
        serial_secs / parallel_secs.max(1e-9),
    );
    let health = sharded.health();
    let cache = sharded.cache_stats();
    println!(
        "health: fitted={} epochs={:?} model_epoch={:?} accepted={} \
         quarantined={} degraded_scores={} cache_hit_rate={:.3}",
        health.fitted,
        snap.epochs(),
        health.model_epoch,
        health.accepted,
        health.quarantined,
        health.degraded_scores,
        cache.hit_rate(),
    );
    Ok(())
}

/// How the `serve-loop` load generator times its submissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arrivals {
    /// Submit, wait for the ticket, pace to the offered rate.
    Closed,
    /// Fixed-interval schedule, independent of completions.
    OpenFixed,
    /// Poisson (exponential inter-arrival) schedule, independent of
    /// completions.
    OpenPoisson,
}

/// `serve-loop`: the request-coalescing front-end under load. Ingests
/// the stream through the sharded path like `serve`, then puts the
/// published snapshot behind a [`Coalescer`] and drives it with client
/// threads. Closed-loop clients each submit one pair, wait for the
/// ticket, and pace to the offered rate (`--qps 0` submits as fast as
/// the loop allows). Open-loop clients (`--arrivals fixed|poisson`)
/// follow their arrival schedule regardless of completions — a
/// backed-up server keeps receiving load, so overload surfaces as
/// admission sheds and deadline misses instead of politely throttled
/// clients. Reports the SLO numbers the coalescer exists to serve:
/// p50/p99 end-to-end latency, deadline-miss rate, mean batch size and
/// overload sheds.
fn cmd_serve_loop(args: &[String], obs: &ObsHandle) -> Result<(), String> {
    let path = args.first().ok_or("usage: ssf serve-loop <edge-list>")?;
    let g = load(path, args)?;
    let shards: usize = parse_flag(args, "--shards", 1)?;
    let threads: usize = parse_flag(args, "--threads", 1)?;
    let clients: usize = parse_flag(args, "--clients", 4)?;
    let qps: u64 = parse_flag(args, "--qps", 0)?;
    let duration_ms: u64 = parse_flag(args, "--duration-ms", 1000)?;
    let max_batch: usize = parse_flag(args, "--max-batch", 32)?;
    let max_delay_us: u64 = parse_flag(args, "--max-delay-us", 100)?;
    let queue: usize = parse_flag(args, "--queue", 256)?;
    let deadline_us: u64 = parse_flag(args, "--deadline-us", 250_000)?;
    let seed: u64 = parse_flag(args, "--seed", 7)?;
    let arrivals = match flag(args, "--arrivals").as_deref() {
        None | Some("closed") => Arrivals::Closed,
        Some("fixed") => Arrivals::OpenFixed,
        Some("poisson") => Arrivals::OpenPoisson,
        Some(v) => {
            return Err(format!(
                "invalid value for --arrivals: {v:?} \
                 (closed, fixed, poisson)"
            ))
        }
    };
    if arrivals != Arrivals::Closed && qps == 0 {
        return Err("open-loop arrivals need --qps > 0".into());
    }
    if clients == 0 {
        return Err("--clients must be at least 1".into());
    }
    let n = g.node_count() as u32;
    if n < 2 {
        return Err("network too small to serve".into());
    }
    let opts = MethodOptions {
        k: parse_flag(args, "--k", 10)?,
        nm_epochs: parse_flag(args, "--epochs", 40)?,
        seed,
        ..MethodOptions::default()
    };
    let config = OnlinePredictorConfig::builder()
        .method(opts)
        .refit_every(u32::MAX) // one deliberate refit after ingest
        .window(window_width(args)?)
        .build()
        .map_err(|e| e.to_string())?;
    let mut sharded =
        ShardedPredictor::with_recorder(config, shards, obs.clone())
            .map_err(|e| e.to_string())?;
    let mut events: Vec<_> = g.links().map(|l| (l.u, l.v, l.t)).collect();
    events.sort_by_key(|&(_, _, t)| t);
    let accepted = sharded.observe_batch_parallel(&events);
    println!("ingested {accepted} events over {shards} shard(s)");
    if let Err(e) = sharded.try_refit_all() {
        eprintln!("warning: serving degraded, refit failed: {e}");
    }
    let snap = sharded.snapshot();

    // Typed configuration errors (ConfigError::ZeroBatch & friends)
    // surface here as `error:` lines, never panics.
    let coalesce_config = CoalesceConfig::builder()
        .max_batch(max_batch)
        .max_delay_ns(max_delay_us.saturating_mul(1_000))
        .queue_capacity(queue)
        .worker_threads(threads)
        .default_deadline_ns(Some(deadline_us.saturating_mul(1_000).max(1)))
        .build()
        .map_err(|e| e.to_string())?;
    let coalescer = Coalescer::with_clock_and_recorder(
        snap,
        coalesce_config,
        Arc::new(SystemClock::new()),
        obs.clone(),
    );
    let duration = std::time::Duration::from_millis(duration_ms);
    // Per-client pacing interval; `--qps 0` means unpaced.
    let interval = (qps > 0).then(|| {
        std::time::Duration::from_secs_f64(clients as f64 / qps as f64)
    });
    let worker = {
        let c = coalescer.clone();
        std::thread::spawn(move || c.run_worker())
    };
    let t0 = Instant::now();
    let mut latencies_ns: Vec<u64> = Vec::new();
    std::thread::scope(|s| -> Result<(), String> {
        let handles: Vec<_> = (0..clients)
            .map(|who| {
                let c = coalescer.clone();
                s.spawn(move || {
                    // Deterministic per-client pair stream (splitmix-
                    // style LCG; no RNG dependency in the CLI).
                    let mut state =
                        seed ^ (who as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    let mut next_u32 = move || {
                        state = state
                            .wrapping_mul(6_364_136_223_846_793_005)
                            .wrapping_add(1_442_695_040_888_963_407);
                        (state >> 33) as u32
                    };
                    let mut lat: Vec<u64> = Vec::new();
                    // Open-loop tickets are collected and drained only
                    // after the arrival schedule ends, so submissions
                    // never wait on completions.
                    let mut pending: Vec<(Instant, ssf_repro::Ticket)> =
                        Vec::new();
                    let start = Instant::now();
                    let mut next = start;
                    while start.elapsed() < duration {
                        if let Some(iv) = interval {
                            let now = Instant::now();
                            if now < next {
                                std::thread::sleep(next - now);
                            }
                            next += match arrivals {
                                Arrivals::OpenPoisson => {
                                    // Inverse-CDF exponential draw on
                                    // the LCG stream, clamped away
                                    // from zero so the schedule always
                                    // moves forward.
                                    let u = (f64::from(next_u32()) + 1.0)
                                        / 4_294_967_296.0;
                                    std::time::Duration::from_secs_f64(
                                        (-u.ln() * iv.as_secs_f64()).max(1e-9),
                                    )
                                }
                                _ => iv,
                            };
                        }
                        let u = next_u32() % n;
                        let mut v = next_u32() % n;
                        if u == v {
                            v = (v + 1) % n;
                        }
                        let issued = Instant::now();
                        if let Ok(ticket) = c.submit(u, v) {
                            if arrivals == Arrivals::Closed {
                                if ticket.wait().is_ok() {
                                    let ns = u64::try_from(
                                        issued.elapsed().as_nanos(),
                                    )
                                    .unwrap_or(u64::MAX);
                                    lat.push(ns);
                                }
                            } else {
                                pending.push((issued, ticket));
                            }
                        }
                    }
                    for (issued, ticket) in pending {
                        if ticket.wait().is_ok() {
                            let ns = u64::try_from(issued.elapsed().as_nanos())
                                .unwrap_or(u64::MAX);
                            lat.push(ns);
                        }
                    }
                    lat
                })
            })
            .collect();
        for h in handles {
            let lat =
                h.join().map_err(|_| "client thread panicked".to_string())?;
            latencies_ns.extend(lat);
        }
        Ok(())
    })?;
    let elapsed = t0.elapsed().as_secs_f64();
    coalescer.shutdown();
    worker
        .join()
        .map_err(|_| "worker thread panicked".to_string())?;

    let stats = coalescer.stats();
    if stats.accepted + stats.rejected() != stats.submitted
        || stats.completed + stats.expired != stats.accepted
    {
        return Err(format!("serving counters do not reconcile: {stats:?}"));
    }
    latencies_ns.sort_unstable();
    let quantile_us = |q: f64| -> f64 {
        if latencies_ns.is_empty() {
            return 0.0;
        }
        let idx = ((latencies_ns.len() - 1) as f64 * q).round() as usize;
        latencies_ns[idx.min(latencies_ns.len() - 1)] as f64 / 1e3
    };
    let offered = if qps > 0 {
        format!("{qps} qps offered")
    } else {
        "unpaced".to_string()
    };
    let arrival_label = match arrivals {
        Arrivals::Closed => "closed-loop",
        Arrivals::OpenFixed => "open-loop fixed-rate",
        Arrivals::OpenPoisson => "open-loop poisson",
    };
    println!(
        "serve-loop: {clients} client(s), {arrival_label}, {offered}, \
         {duration_ms} ms, max_batch {max_batch}, \
         max_delay {max_delay_us}us, queue {queue}, \
         deadline {deadline_us}us"
    );
    println!(
        "completed {} of {} submitted: {:.0} qps achieved, \
         p50 {:.0}us, p99 {:.0}us",
        stats.completed,
        stats.submitted,
        stats.completed as f64 / elapsed.max(1e-9),
        quantile_us(0.50),
        quantile_us(0.99),
    );
    let miss_rate = if stats.submitted == 0 {
        0.0
    } else {
        stats.deadline_misses() as f64 / stats.submitted as f64
    };
    println!(
        "slo: deadline miss rate {miss_rate:.4} ({} misses), \
         shed {} overloaded, mean batch size {:.2} over {} batches",
        stats.deadline_misses(),
        stats.rejected_overload,
        stats.mean_batch_size(),
        stats.batches,
    );
    Ok(())
}

/// The predictor configuration `save` and `restore` share. Both parse
/// the same flags with the same defaults: the durable state carries a
/// fingerprint of the configuration it was written under, and recovery
/// refuses a mismatch — so the two commands must derive the config
/// identically.
fn predictor_config(args: &[String]) -> Result<OnlinePredictorConfig, String> {
    let seed: u64 = parse_flag(args, "--seed", 7)?;
    let opts = MethodOptions {
        k: parse_flag(args, "--k", 10)?,
        nm_epochs: parse_flag(args, "--epochs", 40)?,
        seed,
        ..MethodOptions::default()
    };
    OnlinePredictorConfig::builder()
        .method(opts)
        .refit_every(parse_flag(args, "--refit-every", 64)?)
        .storage(storage_mode(args)?)
        .window(window_width(args)?)
        .build()
        .map_err(|e| e.to_string())
}

/// `--window W`: sliding-window width in timestamp ticks; absent means
/// unbounded (the append-only behavior every command had before).
fn window_width(args: &[String]) -> Result<Option<u32>, String> {
    match flag(args, "--window") {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("invalid value for --window: {v:?}")),
    }
}

/// `--advance T`: explicitly pushes a predictor's horizon to `T`,
/// expiring links that fall behind the new cutoff, and reports what
/// aged out. A no-op when the horizon is already at `T`.
fn apply_advance(
    p: &mut OnlineLinkPredictor,
    args: &[String],
) -> Result<(), String> {
    let Some(to) = flag(args, "--advance") else {
        return Ok(());
    };
    let to: u32 = to
        .parse()
        .map_err(|_| format!("invalid value for --advance: {to:?}"))?;
    match p.advance(to).map_err(|e| e.to_string())? {
        Some(report) => println!(
            "advanced horizon to {}: expired {} link(s) behind cutoff {}",
            report.horizon, report.expired_links, report.cutoff,
        ),
        None => println!("horizon already at {to}; nothing to expire"),
    }
    Ok(())
}

fn storage_mode(args: &[String]) -> Result<StorageMode, String> {
    match flag(args, "--storage").as_deref() {
        None => Ok(StorageMode::Auto),
        Some(v) => v.parse::<StorageMode>().map_err(|_| {
            format!("invalid value for --storage: {v:?} (auto, wide, compact)")
        }),
    }
}

fn fsync_policy(args: &[String]) -> Result<FsyncPolicy, String> {
    match flag(args, "--fsync").as_deref() {
        None | Some("always") => Ok(FsyncPolicy::Always),
        Some("never") => Ok(FsyncPolicy::Never),
        Some(v) => match v.parse::<u32>() {
            Ok(n) if n >= 1 => Ok(FsyncPolicy::EveryN(n)),
            _ => Err(format!(
                "invalid value for --fsync: {v:?} \
                 (always, never, or a record count >= 1)"
            )),
        },
    }
}

fn report_warnings(report: &ssf_repro::RecoveryReport) {
    if report.tail_truncated {
        eprintln!(
            "warning: WAL tail was torn; dropped {} bytes after the \
             last valid record",
            report.bytes_dropped
        );
    }
    for path in &report.corrupt_snapshots {
        eprintln!("warning: skipped corrupt snapshot {}", path.display());
    }
}

/// Replays an edge list through a durable predictor — every event hits
/// the write-ahead log before memory — then checkpoints the full state
/// as one atomic snapshot, leaving `--dir` ready for load-and-serve
/// startup (`ssf restore`, or `ScoringSnapshot::load` in process).
fn cmd_save(args: &[String], obs: &ObsHandle) -> Result<(), String> {
    let path = args
        .first()
        .ok_or("usage: ssf save <edge-list> --dir DIR")?;
    let dir = flag(args, "--dir").ok_or("--dir DIR required")?;
    let g = load(path, args)?;
    let config = predictor_config(args)?;
    let policy = DurabilityPolicy {
        fsync: fsync_policy(args)?,
        ..DurabilityPolicy::default()
    };
    let (mut p, report) = OnlineLinkPredictor::open_with(
        config,
        Path::new(&dir),
        policy,
        obs.clone(),
    )
    .map_err(|e| e.to_string())?;
    report_warnings(&report);
    if report.snapshot_revision.is_some() || report.records_replayed > 0 {
        eprintln!(
            "warning: {dir} already held durable state at revision {}; \
             appending this edge list on top",
            p.network().revision()
        );
    }
    let mut events: Vec<_> = g.links().map(|l| (l.u, l.v, l.t)).collect();
    events.sort_by_key(|&(_, _, t)| t);
    let t0 = Instant::now();
    for &(u, v, t) in &events {
        p.observe(u, v, t);
    }
    if let Some(e) = p.last_wal_error() {
        return Err(format!("WAL append failed: {e}"));
    }
    let ingest_secs = t0.elapsed().as_secs_f64();
    apply_advance(&mut p, args)?;
    let snapshot = p.checkpoint().map_err(|e| e.to_string())?;
    println!(
        "logged {} events in {ingest_secs:.3}s ({:.0} events/s)",
        events.len(),
        events.len() as f64 / ingest_secs.max(1e-9),
    );
    println!(
        "checkpoint {} at revision {} (fitted={}, storage={})",
        snapshot.display(),
        p.network().revision(),
        p.is_fitted(),
        p.snapshot().storage_mode(),
    );
    Ok(())
}

/// Recovers a predictor from a durability directory: newest valid
/// snapshot, then the WAL tail replayed through the normal ingest
/// path. Lossy by default (torn tails and corrupt snapshots become
/// `warning:` lines); `--strict` turns any loss into a fatal error.
fn cmd_restore(args: &[String], obs: &ObsHandle) -> Result<(), String> {
    let dir = flag(args, "--dir")
        .ok_or("usage: ssf restore --dir DIR [--strict] [--score U,V]")?;
    let config = predictor_config(args)?;
    let strict = args.iter().any(|a| a == "--strict");
    let (mut p, report) = match flag(args, "--at-revision") {
        Some(rev) => {
            let rev: u64 = rev.parse().map_err(|_| {
                format!("invalid value for --at-revision: {rev:?}")
            })?;
            OnlineLinkPredictor::open_to_revision(config, Path::new(&dir), rev)
        }
        None => OnlineLinkPredictor::open_with(
            config,
            Path::new(&dir),
            DurabilityPolicy::default(),
            obs.clone(),
        ),
    }
    .map_err(|e| e.to_string())?;
    report_warnings(&report);
    if strict && report.is_lossy() {
        return Err(format!(
            "recovery dropped data ({} WAL bytes truncated, {} corrupt \
             snapshot(s) skipped); rerun without --strict to accept the \
             recovered prefix",
            report.bytes_dropped,
            report.corrupt_snapshots.len(),
        ));
    }
    match report.snapshot_revision {
        Some(rev) => println!(
            "restored snapshot at revision {rev} + {} WAL records",
            report.records_replayed
        ),
        None => println!(
            "no snapshot; replayed {} WAL records from genesis",
            report.records_replayed
        ),
    }
    apply_advance(&mut p, args)?;
    let h = p.health();
    println!(
        "health: revision={} fitted={} model_epoch={:?} accepted={} \
         quarantined={}",
        p.network().revision(),
        h.fitted,
        h.model_epoch,
        h.accepted,
        h.quarantined,
    );
    if let Some(w) = p.window() {
        println!(
            "window: width={} horizon={} cutoff={} (out-of-window events \
             quarantined so far: {})",
            w.width,
            w.horizon,
            w.cutoff(),
            p.stats().out_of_window,
        );
    }
    if let Some(pair) = flag(args, "--score") {
        let (u, v) = pair
            .split_once(',')
            .ok_or_else(|| format!("--score expects U,V, got {pair:?}"))?;
        let u: u32 = u
            .trim()
            .parse()
            .map_err(|_| format!("invalid node in --score: {u:?}"))?;
        let v: u32 = v
            .trim()
            .parse()
            .map_err(|_| format!("invalid node in --score: {v:?}"))?;
        match p.score(u, v) {
            Some(s) => println!("P(link {u}-{v}) = {s:.4}"),
            None => println!(
                "P(link {u}-{v}) unavailable (no fitted model, unknown \
                 node, or u == v)"
            ),
        }
    }
    Ok(())
}

fn cmd_evaluate(args: &[String], obs: &ObsHandle) -> Result<(), String> {
    let path = args.first().ok_or("usage: ssf evaluate <edge-list>")?;
    let g = load(path, args)?;
    let seed: u64 = parse_flag(args, "--seed", 7)?;
    let k: usize = parse_flag(args, "--k", 10)?;
    let methods: Vec<Method> = match flag(args, "--methods") {
        None => Method::all().to_vec(),
        Some(list) => list
            .split(',')
            .map(|name| {
                Method::parse(name.trim())
                    .ok_or_else(|| format!("unknown method {name:?}"))
            })
            .collect::<Result<_, _>>()?,
    };
    let split = Split::with_min_positives(
        &g,
        &SplitConfig {
            seed,
            max_positives: Some(400),
            ..SplitConfig::default()
        },
        50,
    )
    .map_err(|e| e.to_string())?;
    let opts = MethodOptions {
        k,
        seed,
        nmf: baselines::NmfConfig {
            seed,
            ..baselines::NmfConfig::default()
        },
        ..MethodOptions::default()
    };
    // Earlier-window folds augment the supervised training sets, exactly
    // as in the Table III harness.
    let extra = backtest_splits(
        &split.history,
        &BacktestConfig {
            split: SplitConfig {
                seed,
                max_positives: Some(400),
                ..SplitConfig::default()
            },
            folds: 3,
            stride: 1,
            min_positives: 25,
        },
    )
    .unwrap_or_default();
    let mut table = ResultsTable::new();
    for m in methods {
        let span = obs.span("ssf.cli.evaluate_method");
        table.record("input", &m.evaluate_augmented(&split, &extra, &opts));
        span.finish();
        obs.counter("ssf.cli.methods_evaluated", 1);
    }
    print!("{table}");
    Ok(())
}
