//! The 15 link-prediction methods of the paper's Table III, behind one
//! uniform interface.
//!
//! Unsupervised ranking baselines (CN … NMF) score pairs directly on the
//! static view of the history network; supervised methods (WLLR, WLNM,
//! SSFLR-W, SSFNM-W, SSFLR, SSFNM) extract a link feature per sample,
//! standardize, train their model on the training samples and score the
//! test samples. [`Method::evaluate`] runs any of them on a prepared
//! [`Split`] and returns the Table III cell (AUC, F1).

use std::panic::{self, AssertUnwindSafe};

use baselines::{
    local, KatzIndex, LocalPathIndex, LocalRandomWalk, Nmf, NmfConfig,
    TemporalNmf, WlfConfig, WlfExtractor,
};
use dyngraph::{StaticGraph, Timestamp};
use linalg::Matrix;
use obs::ObsHandle;
use ssf_core::{
    CacheStats, EntryEncoding, ExtractionCache, SsfConfig, SsfExtractor,
};
use ssf_eval::{
    evaluate_ranking, evaluate_supervised_scores, LinkSample, MethodResult,
    Split,
};
use ssf_ml::{LinearRegression, MlpConfig, NeuralMachine, StandardScaler};

use crate::error::ConfigError;

/// One of the paper's Table III methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Method {
    /// Common Neighbors (unsupervised).
    Cn,
    /// Jaccard index (unsupervised).
    Jaccard,
    /// Preferential Attachment (unsupervised).
    Pa,
    /// Adamic–Adar (unsupervised).
    Aa,
    /// Resource Allocation (unsupervised).
    Ra,
    /// Reliable weighted Resource Allocation (unsupervised, weighted).
    Rwra,
    /// Truncated Katz index (unsupervised).
    Katz,
    /// Superposed local random walk (unsupervised).
    Rw,
    /// Non-negative matrix factorization (unsupervised reconstruction).
    Nmf,
    /// WLF + linear regression (Zhang & Chen's feature).
    Wllr,
    /// WLF + neural machine.
    Wlnm,
    /// SSF-W (timestamp-blind SSF) + linear regression.
    SsflrW,
    /// SSF-W + neural machine.
    SsfnmW,
    /// SSF + linear regression — the paper's first proposed method.
    Ssflr,
    /// SSF + neural machine — the paper's second proposed method.
    Ssfnm,
    /// Local Path index `A² + εA³` (related-work extension, paper ref \[8\]).
    Lp,
    /// Temporal matrix factorization over the decay-weighted adjacency
    /// (related-work extension, after paper ref \[28\]).
    Tmf,
}

impl Method {
    /// All 15 methods in Table III row order.
    pub fn all() -> [Method; 15] {
        use Method::*;
        [
            Cn, Jaccard, Pa, Aa, Ra, Rwra, Katz, Rw, Nmf, Wllr, SsflrW, Wlnm,
            SsfnmW, Ssflr, Ssfnm,
        ]
    }

    /// Table III's 15 methods plus the related-work extensions (LP, TMF).
    pub fn extended() -> Vec<Method> {
        let mut v = Self::all().to_vec();
        v.push(Method::Lp);
        v.push(Method::Tmf);
        v
    }

    /// The method name as printed in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Cn => "CN",
            Method::Jaccard => "Jac.",
            Method::Pa => "PA",
            Method::Aa => "AA",
            Method::Ra => "RA",
            Method::Rwra => "rWRA",
            Method::Katz => "Katz",
            Method::Rw => "RW",
            Method::Nmf => "NMF",
            Method::Wllr => "WLLR",
            Method::Wlnm => "WLNM",
            Method::SsflrW => "SSFLR-W",
            Method::SsfnmW => "SSFNM-W",
            Method::Ssflr => "SSFLR",
            Method::Ssfnm => "SSFNM",
            Method::Lp => "LP",
            Method::Tmf => "TMF",
        }
    }

    /// Parses a method name (case-insensitive), including the extensions.
    pub fn parse(name: &str) -> Option<Method> {
        Method::extended()
            .into_iter()
            .find(|m| m.name().eq_ignore_ascii_case(name))
    }

    /// `true` for the supervised, feature-based methods.
    pub fn is_supervised(&self) -> bool {
        matches!(
            self,
            Method::Wllr
                | Method::Wlnm
                | Method::SsflrW
                | Method::SsfnmW
                | Method::Ssflr
                | Method::Ssfnm
        )
    }

    /// Runs the method on a prepared split, augmenting the supervised
    /// training set with labeled samples from earlier prediction windows
    /// (`extra_train`, e.g. from [`ssf_eval::backtest_splits`]).
    ///
    /// Each extra fold's samples are featurized against *that fold's own
    /// history*, so no future information reaches the model; the folds
    /// predate the evaluation window by construction. Ranking methods have
    /// nothing to train and ignore the extra folds.
    pub fn evaluate_augmented(
        &self,
        split: &Split,
        extra_train: &[Split],
        opts: &MethodOptions,
    ) -> MethodResult {
        if !self.is_supervised() {
            return self.evaluate(split, opts);
        }
        let stat = split.history.to_static();
        self.supervised(split, extra_train, opts, &stat, self.model_kind())
    }

    /// Runs the method on a prepared split.
    pub fn evaluate(
        &self,
        split: &Split,
        opts: &MethodOptions,
    ) -> MethodResult {
        let stat = split.history.to_static();
        match self {
            Method::Cn => evaluate_ranking(self.name(), split, |u, v| {
                local::common_neighbors(&stat, u, v)
            }),
            Method::Jaccard => evaluate_ranking(self.name(), split, |u, v| {
                local::jaccard(&stat, u, v)
            }),
            Method::Pa => evaluate_ranking(self.name(), split, |u, v| {
                local::preferential_attachment(&stat, u, v)
            }),
            Method::Aa => evaluate_ranking(self.name(), split, |u, v| {
                local::adamic_adar(&stat, u, v)
            }),
            Method::Ra => evaluate_ranking(self.name(), split, |u, v| {
                local::resource_allocation(&stat, u, v)
            }),
            Method::Rwra => evaluate_ranking(self.name(), split, |u, v| {
                local::rwra(&stat, u, v)
            }),
            Method::Katz => {
                let mut katz =
                    KatzIndex::new(&stat, opts.katz_beta, opts.katz_max_len);
                evaluate_ranking(self.name(), split, |u, v| katz.score(u, v))
            }
            Method::Rw => {
                let mut rw = LocalRandomWalk::new(&stat, opts.rw_steps);
                evaluate_ranking(self.name(), split, |u, v| rw.score(u, v))
            }
            Method::Nmf => {
                let nmf = Nmf::factorize(&stat, opts.nmf);
                evaluate_ranking(self.name(), split, |u, v| nmf.score(u, v))
            }
            Method::Lp => {
                let mut lp = LocalPathIndex::new(&stat, opts.lp_epsilon);
                evaluate_ranking(self.name(), split, |u, v| lp.score(u, v))
            }
            Method::Tmf => {
                let present =
                    split.history.max_timestamp().map_or(split.l_t, |t| t + 1);
                let tmf = TemporalNmf::factorize(
                    &split.history,
                    present,
                    opts.theta,
                    opts.nmf,
                );
                evaluate_ranking(self.name(), split, |u, v| tmf.score(u, v))
            }
            supervised => self.supervised(
                split,
                &[],
                opts,
                &stat,
                supervised.model_kind(),
            ),
        }
    }

    /// LR vs NM for the supervised methods.
    ///
    /// # Panics
    ///
    /// Panics for unsupervised methods.
    fn model_kind(&self) -> ModelKind {
        match self {
            Method::Wllr | Method::SsflrW | Method::Ssflr => ModelKind::Lr,
            Method::Wlnm | Method::SsfnmW | Method::Ssfnm => ModelKind::Nm,
            other => unreachable!("{other:?} has no trained model"),
        }
    }

    /// This method's prepared feature extractor, built once per batch
    /// instead of once per sample; `None` for unsupervised methods.
    fn feature_extractor(&self, opts: &MethodOptions) -> Option<FeatureKind> {
        match self {
            Method::Wllr | Method::Wlnm => Some(FeatureKind::Wlf(
                WlfExtractor::new(WlfConfig::new(opts.k)),
            )),
            Method::SsflrW | Method::SsfnmW => {
                let cfg = SsfConfig::new(opts.k)
                    .with_encoding(EntryEncoding::LinkCount);
                Some(FeatureKind::Ssf(SsfExtractor::new(cfg)))
            }
            Method::Ssflr | Method::Ssfnm => {
                let cfg = SsfConfig::new(opts.k)
                    .with_theta(opts.theta)
                    .with_encoding(opts.ssf_encoding);
                Some(FeatureKind::Ssf(SsfExtractor::new(cfg)))
            }
            _ => None,
        }
    }

    /// The feature-row width this method produces under `opts`; `None` for
    /// unsupervised methods.
    ///
    /// Computed from the configuration alone (`K(K−1)/2 − 1`, doubled for
    /// the concatenated SSF encoding) so a batch whose every sample
    /// degrades still yields full-width zero rows instead of collapsing
    /// the design matrix to width 0.
    pub fn feature_dim(&self, opts: &MethodOptions) -> Option<usize> {
        let base = (opts.k * opts.k.saturating_sub(1) / 2).saturating_sub(1);
        match self {
            Method::Wllr | Method::Wlnm | Method::SsflrW | Method::SsfnmW => {
                Some(base)
            }
            Method::Ssflr | Method::Ssfnm => {
                if opts.ssf_encoding == EntryEncoding::InfluenceAndStructure {
                    Some(2 * base)
                } else {
                    Some(base)
                }
            }
            _ => None,
        }
    }

    /// Extracts one sample's feature behind a panic guard: a degenerate
    /// pair (typed error) or a panicking extraction (pathological
    /// subgraph) yields `None` instead of tearing the run down.
    ///
    /// The SSF arm runs the [`dyngraph::GraphView`]-generic extraction
    /// pipeline against the fold's mutable history network; the serving
    /// layer drives the same code over frozen CSR views, and the outputs
    /// are bit-identical by the view contract.
    fn feature_caught(
        &self,
        ex: &FeatureKind,
        cache: &mut ExtractionCache,
        fold: &Split,
        fold_stat: &StaticGraph,
        sample: &LinkSample,
        present: Timestamp,
    ) -> Option<Vec<f64>> {
        panic::catch_unwind(AssertUnwindSafe(|| match ex {
            FeatureKind::Wlf(w) => {
                Some(w.extract(fold_stat, sample.u, sample.v))
            }
            FeatureKind::Ssf(s) => s
                .try_extract_cached(
                    &fold.history,
                    sample.u,
                    sample.v,
                    present,
                    cache,
                )
                .ok()
                .map(ssf_core::SsfFeature::into_values),
        }))
        .ok()
        .flatten()
    }

    /// Extracts features for a batch of samples, fanning out across the
    /// available cores with scoped threads (extraction is embarrassingly
    /// parallel and dominates the supervised methods' wall-clock). Output
    /// order matches the input order, so runs stay deterministic.
    fn extract_parallel(
        &self,
        fold: &Split,
        opts: &MethodOptions,
        fold_stat: &StaticGraph,
        samples: &[LinkSample],
    ) -> Vec<Vec<f64>> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.extract_with_threads(fold, opts, fold_stat, samples, threads)
    }

    /// Parallel extraction with an explicit worker count — the
    /// public batch-extraction entry point. Output is identical for every
    /// `threads` value (the determinism property tests pin this): chunking
    /// only changes which worker computes a row, and each worker's
    /// per-chunk [`ExtractionCache`] is bit-identical to no cache at all.
    ///
    /// Unsupervised methods have no feature and yield empty rows.
    pub fn extract_batch(
        &self,
        fold: &Split,
        opts: &MethodOptions,
        samples: &[LinkSample],
        threads: usize,
    ) -> Vec<Vec<f64>> {
        self.extract_batch_stats(fold, opts, samples, threads).0
    }

    /// [`Method::extract_batch`] that also returns the combined
    /// [`CacheStats`] of every worker's extraction cache.
    ///
    /// Each worker chunk runs against its own cache; the returned stats
    /// are the merge across *all* chunks (an earlier revision reported
    /// only the last chunk's counters, under-counting hits and misses on
    /// any multi-threaded batch — `extract_batch_stats_cover_all_chunks`
    /// pins the fix).
    pub fn extract_batch_stats(
        &self,
        fold: &Split,
        opts: &MethodOptions,
        samples: &[LinkSample],
        threads: usize,
    ) -> (Vec<Vec<f64>>, CacheStats) {
        self.extract_batch_observed(
            fold,
            opts,
            samples,
            threads,
            &ObsHandle::noop(),
        )
    }

    /// [`Method::extract_batch_stats`] with telemetry: the batch runs
    /// under an `ssf.methods.extract` span, sample/degraded-row counts
    /// land in `ssf.methods.samples` / `ssf.methods.degraded_rows`, and
    /// every worker cache carries the recorder so `ssf.core.*` stage
    /// timings flow from inside extraction.
    pub fn extract_batch_observed(
        &self,
        fold: &Split,
        opts: &MethodOptions,
        samples: &[LinkSample],
        threads: usize,
        obs: &ObsHandle,
    ) -> (Vec<Vec<f64>>, CacheStats) {
        let stat = fold.history.to_static();
        self.extract_with_threads_observed(
            fold, opts, &stat, samples, threads, obs,
        )
    }

    /// Shared worker-pool body of [`Method::extract_parallel`] /
    /// [`Method::extract_batch`].
    ///
    /// Robustness: each sample extracts behind [`Method::feature_caught`],
    /// so one bad sample degrades to an all-zero feature row (width from
    /// [`Method::feature_dim`], even when *every* sample degrades) instead
    /// of poisoning the batch; a worker thread that dies anyway has its
    /// chunk recomputed sequentially.
    ///
    /// Temporal decay is measured from the first tick after the history
    /// ends, not from the (possibly later) prediction time: when the
    /// evaluation window spans several ticks, measuring from `l_t` would
    /// insert a dead gap that exponentially suppresses *all* history.
    fn extract_with_threads(
        &self,
        fold: &Split,
        opts: &MethodOptions,
        fold_stat: &StaticGraph,
        samples: &[LinkSample],
        threads: usize,
    ) -> Vec<Vec<f64>> {
        self.extract_with_threads_observed(
            fold,
            opts,
            fold_stat,
            samples,
            threads,
            &ObsHandle::noop(),
        )
        .0
    }

    /// Worker-pool body of the batch extraction entry points: returns the
    /// feature rows plus the [`CacheStats`] merged across every worker
    /// chunk (not just the last one).
    fn extract_with_threads_observed(
        &self,
        fold: &Split,
        opts: &MethodOptions,
        fold_stat: &StaticGraph,
        samples: &[LinkSample],
        threads: usize,
        obs: &ObsHandle,
    ) -> (Vec<Vec<f64>>, CacheStats) {
        let _span = obs.span("ssf.methods.extract");
        obs.counter("ssf.methods.samples", samples.len() as u64);
        let Some(ex) = self.feature_extractor(opts) else {
            let empty = samples.iter().map(|_| Vec::new()).collect();
            return (empty, CacheStats::default());
        };
        let dim = self.feature_dim(opts).unwrap_or(0);
        let present = fold.history.max_timestamp().map_or(fold.l_t, |t| t + 1);
        let run_chunk =
            |part: &[LinkSample]| -> (Vec<Option<Vec<f64>>>, CacheStats) {
                let mut cache = ExtractionCache::with_recorder(obs.clone());
                let rows = part
                    .iter()
                    .map(|s| {
                        self.feature_caught(
                            &ex, &mut cache, fold, fold_stat, s, present,
                        )
                    })
                    .collect();
                (rows, cache.stats())
            };
        let (rows, stats) = if threads <= 1 || samples.len() < 64 {
            run_chunk(samples)
        } else {
            let chunk = samples.len().div_ceil(threads);
            let run_chunk = &run_chunk;
            std::thread::scope(|scope| {
                let handles: Vec<_> = samples
                    .chunks(chunk)
                    .map(|part| (part, scope.spawn(move || run_chunk(part))))
                    .collect();
                let mut rows = Vec::with_capacity(samples.len());
                let mut stats = CacheStats::default();
                for (part, h) in handles {
                    let (chunk_rows, chunk_stats) =
                        h.join().unwrap_or_else(|_| run_chunk(part));
                    rows.extend(chunk_rows);
                    stats.merge(&chunk_stats);
                }
                (rows, stats)
            })
        };
        let mut degraded = 0u64;
        let rows = rows
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    degraded += 1;
                    vec![0.0; dim]
                })
            })
            .collect();
        if degraded > 0 {
            obs.counter("ssf.methods.degraded_rows", degraded);
        }
        (rows, stats)
    }

    fn supervised(
        &self,
        split: &Split,
        extra_train: &[Split],
        opts: &MethodOptions,
        stat: &StaticGraph,
        model: ModelKind,
    ) -> MethodResult {
        let extract_fold =
            |fold: &Split, fold_stat: &StaticGraph, samples: &[LinkSample]| {
                self.extract_parallel(fold, opts, fold_stat, samples)
            };
        let mut train_rows = extract_fold(split, stat, &split.train);
        let mut train_labels: Vec<bool> =
            split.train.iter().map(|s| s.label).collect();
        for fold in extra_train {
            let fold_stat = fold.history.to_static();
            for samples in [&fold.train, &fold.test] {
                train_rows.extend(extract_fold(fold, &fold_stat, samples));
                train_labels.extend(samples.iter().map(|s| s.label));
            }
        }
        let dim = train_rows.first().map_or(0, Vec::len);
        if dim == 0 {
            // No usable training features survived extraction (empty train
            // set or every sample degraded): fall back to ranking the test
            // pairs by common neighbors rather than refusing to serve.
            let scores: Vec<f64> = split
                .test
                .iter()
                .map(|s| local::common_neighbors(stat, s.u, s.v))
                .collect();
            return evaluate_supervised_scores(self.name(), split, &scores);
        }
        // log1p compresses the heavy-tailed multi-link counts of SSF-W /
        // normalized-influence entries before standardization; without it
        // the count variance swamps the presence/absence signal. All
        // entries are non-negative; bounded encodings pass monotonically.
        let x_train_raw =
            Matrix::from_fn(train_rows.len(), dim, |i, j| train_rows[i][j])
                .map(f64::ln_1p);
        let test_rows = extract_fold(split, stat, &split.test);
        let x_test_raw =
            Matrix::from_fn(test_rows.len(), dim, |i, j| test_rows[i][j])
                .map(f64::ln_1p);
        let scaler = StandardScaler::fit(&x_train_raw);
        let x_train = scaler.transform(&x_train_raw);
        let x_test = scaler.transform(&x_test_raw);

        let scores: Vec<f64> = match model {
            ModelKind::Lr => {
                let y: Vec<f64> = train_labels
                    .iter()
                    .map(|&l| if l { 1.0 } else { 0.0 })
                    .collect();
                match LinearRegression::fit(&x_train, &y, opts.ridge_lambda) {
                    Ok(lr) => (0..x_test.rows())
                        .map(|i| lr.predict(x_test.row(i)))
                        .collect(),
                    // Degenerate design (e.g. λ = 0 on collinear features):
                    // degrade to common-neighbor ranking instead of dying.
                    Err(_) => split
                        .test
                        .iter()
                        .map(|s| local::common_neighbors(stat, s.u, s.v))
                        .collect(),
                }
            }
            ModelKind::Nm => {
                let y: Vec<usize> =
                    train_labels.iter().map(|&l| usize::from(l)).collect();
                let cfg = MlpConfig {
                    epochs: opts.nm_epochs,
                    seed: opts.seed,
                    ..MlpConfig::default()
                };
                let nm = NeuralMachine::train(&x_train, &y, cfg);
                (0..x_test.rows())
                    .map(|i| nm.score(x_test.row(i)))
                    .collect()
            }
        };
        evaluate_supervised_scores(self.name(), split, &scores)
    }
}

/// LR vs NM model choice for the supervised methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModelKind {
    Lr,
    Nm,
}

/// A prepared per-batch feature extractor (WLF is static-graph based, SSF
/// timestamped), hoisted out of the per-sample loop.
#[derive(Debug, Clone)]
enum FeatureKind {
    Wlf(WlfExtractor),
    Ssf(SsfExtractor),
}

/// Shared hyperparameters (paper defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodOptions {
    /// `K` for WLF / SSF features (paper: 10).
    pub k: usize,
    /// Influence decay θ (paper: 0.5).
    pub theta: f64,
    /// Entry encoding for the full SSF methods. Default: the combined
    /// log-influence + structure encoding (see
    /// [`EntryEncoding::InfluenceAndStructure`]); Definition 8's raw
    /// normalized influence and the §V-B reciprocal distance are available
    /// for ablation.
    pub ssf_encoding: EntryEncoding,
    /// Neural machine epochs (paper: 2000 with plain SGD; our Adam default
    /// saturates far earlier — see EXPERIMENTS.md).
    pub nm_epochs: u32,
    /// Ridge strength for the linear regressions.
    pub ridge_lambda: f64,
    /// Katz damping β (paper: 0.001).
    pub katz_beta: f64,
    /// Katz series cutoff.
    pub katz_max_len: u32,
    /// Random-walk steps.
    pub rw_steps: u32,
    /// NMF configuration (shared by NMF and TMF).
    pub nmf: NmfConfig,
    /// Local Path ε.
    pub lp_epsilon: f64,
    /// Seed for model training.
    pub seed: u64,
}

impl MethodOptions {
    /// Checks the hyperparameters a predictor cannot recover from at
    /// runtime: `K` below the K-structure minimum of 3 and a negative or
    /// non-finite influence decay θ. Called by
    /// [`crate::stream::OnlinePredictorConfigBuilder::build`], so invalid
    /// values surface as a typed [`ConfigError`] at construction instead
    /// of an assert deep inside the first extraction.
    ///
    /// # Errors
    ///
    /// [`ConfigError::KTooSmall`] or [`ConfigError::InvalidTheta`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.k < 3 {
            return Err(ConfigError::KTooSmall { k: self.k });
        }
        if !self.theta.is_finite() || self.theta < 0.0 {
            return Err(ConfigError::InvalidTheta { theta: self.theta });
        }
        Ok(())
    }
}

impl Default for MethodOptions {
    fn default() -> Self {
        MethodOptions {
            k: 10,
            theta: 0.5,
            ssf_encoding: EntryEncoding::InfluenceAndStructure,
            nm_epochs: 200,
            ridge_lambda: 1e-3,
            katz_beta: 0.001,
            katz_max_len: 5,
            rw_steps: 3,
            nmf: NmfConfig::default(),
            lp_epsilon: 0.01,
            seed: 13,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyngraph::DynamicNetwork;
    use ssf_eval::SplitConfig;

    #[test]
    fn method_options_validate_rejects_bad_hyperparameters() {
        assert!(MethodOptions::default().validate().is_ok());
        let opts = MethodOptions {
            k: 2,
            ..MethodOptions::default()
        };
        assert_eq!(opts.validate(), Err(ConfigError::KTooSmall { k: 2 }));
        let opts = MethodOptions {
            theta: -1.0,
            ..MethodOptions::default()
        };
        assert!(matches!(
            opts.validate(),
            Err(ConfigError::InvalidTheta { .. })
        ));
        let opts = MethodOptions {
            theta: f64::NAN,
            ..MethodOptions::default()
        };
        assert!(opts.validate().is_err());
    }

    /// A network where new links close triangles: common-neighbor signal.
    fn triadic_network() -> DynamicNetwork {
        let mut g = DynamicNetwork::new();
        // Hubs 0..5 each with a fan; fans of the same hub link up late.
        let mut next = 6u32;
        let mut fans = Vec::new();
        for hub in 0..6u32 {
            for _ in 0..6 {
                g.add_link(hub, next, 1 + (next % 7));
                fans.push((hub, next));
                next += 1;
            }
        }
        // Late triangle closures between fans of the same hub.
        let mut t = 8;
        for w in fans.windows(2) {
            if w[0].0 == w[1].0 && (w[0].1 + w[1].1) % 3 == 0 {
                g.add_link(w[0].1, w[1].1, t.min(9));
                t += 1;
            }
        }
        // Fresh closures at the last tick.
        for w in fans.chunks(6) {
            g.add_link(w[0].1, w[2].1, 10);
            g.add_link(w[1].1, w[3].1, 10);
        }
        g
    }

    fn split() -> Split {
        Split::new(&triadic_network(), &SplitConfig::default()).unwrap()
    }

    #[test]
    fn all_methods_run_and_produce_finite_metrics() {
        let split = split();
        let opts = MethodOptions {
            nm_epochs: 10,
            nmf: NmfConfig {
                iterations: 20,
                ..NmfConfig::default()
            },
            ..MethodOptions::default()
        };
        for m in Method::all() {
            let r = m.evaluate(&split, &opts);
            assert!(r.auc.is_finite() && (0.0..=1.0).contains(&r.auc), "{m:?}");
            assert!(r.f1.is_finite() && (0.0..=1.0).contains(&r.f1), "{m:?}");
            assert_eq!(r.name, m.name());
        }
    }

    #[test]
    fn cn_beats_chance_on_triadic_closure() {
        let r = Method::Cn.evaluate(&split(), &MethodOptions::default());
        assert!(r.auc > 0.6, "CN should exploit common neighbors: {}", r.auc);
    }

    #[test]
    fn ssfnm_beats_chance_on_triadic_closure() {
        let opts = MethodOptions {
            nm_epochs: 60,
            ..MethodOptions::default()
        };
        let r = Method::Ssfnm.evaluate(&split(), &opts);
        assert!(
            r.auc > 0.6,
            "SSFNM should learn the closure rule: {}",
            r.auc
        );
    }

    #[test]
    fn augmentation_adds_training_data_without_changing_ranking_methods() {
        let eval_split = split();
        // A second, earlier fold carved out of the history.
        let Ok(earlier) = Split::new(
            &eval_split.history,
            &SplitConfig {
                window: 2,
                ..SplitConfig::default()
            },
        ) else {
            return; // toy history too thin — nothing to augment with
        };
        let opts = MethodOptions {
            nm_epochs: 10,
            ..MethodOptions::default()
        };
        // Ranking methods ignore the extra folds entirely.
        let plain = Method::Cn.evaluate(&eval_split, &opts);
        let aug = Method::Cn.evaluate_augmented(
            &eval_split,
            std::slice::from_ref(&earlier),
            &opts,
        );
        assert_eq!(plain, aug);
        // Supervised methods stay valid with more data.
        let r =
            Method::Ssflr.evaluate_augmented(&eval_split, &[earlier], &opts);
        assert!((0.0..=1.0).contains(&r.auc));
    }

    #[test]
    fn degenerate_samples_degrade_to_zero_rows() {
        let eval_split = split();
        let stat = eval_split.history.to_static();
        let good = eval_split.train[0];
        let bad = LinkSample {
            u: 3,
            v: 3, // self-pair: extraction would panic
            label: false,
        };
        let rows = Method::Ssflr.extract_parallel(
            &eval_split,
            &MethodOptions::default(),
            &stat,
            &[good, bad, good],
        );
        assert_eq!(rows.len(), 3);
        let dim = rows[0].len();
        assert!(dim > 0);
        assert_eq!(rows[1].len(), dim, "degraded row keeps the batch shape");
        assert!(rows[1].iter().all(|&x| x == 0.0));
        assert_eq!(rows[0], rows[2]);
    }

    /// Regression test: a batch where *every* sample degrades used to
    /// infer the row width from the (nonexistent) first surviving row and
    /// collapse to 0-width rows; the width now comes from the options.
    #[test]
    fn all_degenerate_batch_keeps_feature_width() {
        let eval_split = split();
        let stat = eval_split.history.to_static();
        let bad = LinkSample {
            u: 3,
            v: 3,
            label: false,
        };
        let opts = MethodOptions::default();
        for m in [Method::Ssfnm, Method::Wlnm, Method::SsflrW] {
            let rows =
                m.extract_parallel(&eval_split, &opts, &stat, &[bad, bad]);
            let dim = m.feature_dim(&opts).unwrap();
            assert!(dim > 0, "{m:?}");
            assert_eq!(rows.len(), 2);
            for r in &rows {
                assert_eq!(r.len(), dim, "{m:?} degraded row keeps width");
                assert!(r.iter().all(|&x| x == 0.0));
            }
        }
    }

    /// `feature_dim` must agree with what extraction actually produces.
    #[test]
    fn feature_dim_matches_extracted_rows() {
        let eval_split = split();
        let stat = eval_split.history.to_static();
        let opts = MethodOptions::default();
        let good = eval_split.train[0];
        for m in Method::all() {
            let Some(dim) = m.feature_dim(&opts) else {
                assert!(!m.is_supervised(), "{m:?}");
                continue;
            };
            let rows = m.extract_parallel(&eval_split, &opts, &stat, &[good]);
            assert_eq!(rows[0].len(), dim, "{m:?}");
        }
    }

    #[test]
    fn names_parse_round_trip() {
        for m in Method::all() {
            assert_eq!(Method::parse(m.name()), Some(m));
        }
        assert_eq!(Method::parse("ssfnm"), Some(Method::Ssfnm));
        assert_eq!(Method::parse("nope"), None);
    }

    #[test]
    fn supervised_flag_matches_table() {
        assert!(!Method::Cn.is_supervised());
        assert!(!Method::Nmf.is_supervised());
        assert!(Method::Wllr.is_supervised());
        assert!(Method::Ssfnm.is_supervised());
    }
}
