//! Concurrent serving: immutable scoring snapshots and sharded ingestion.
//!
//! The paper's serving story (§V) interleaves two workloads: timestamped
//! links *stream in* while candidate-pair *queries* arrive. The online
//! predictor is `&mut self` end-to-end — correct, but a single writer
//! monopolizes it, so score throughput is capped at one core and every
//! `observe` stalls all scoring. This module splits the two roles:
//!
//! * [`ScoringSnapshot`] — an immutable, `Arc`-published *epoch* of the
//!   predictor (graph + fitted model + frozen extraction-cache view).
//!   Snapshots are `Send + Sync` and cheap to clone, so any number of
//!   reader threads score concurrently — [`ScoringSnapshot::score_batch_parallel`]
//!   fans one batch out across scoped threads — while the writer keeps
//!   ingesting and refitting, then publishes the next epoch. Scores are
//!   **bit-identical** to the serial predictor paths: every route goes
//!   through the same extraction pipeline, and caches never change values
//!   (`tests/concurrency.rs` proves it under live interleavings).
//! * [`ShardedPredictor`] — N independent single-writer ingest cores over
//!   a partition of the node space. A pair `(u, v)` is owned by shard
//!   `min(u, v) % N`, so every pair has exactly one home for both
//!   ingestion and scoring, and disjoint shards ingest in parallel
//!   ([`ShardedPredictor::observe_batch_parallel`]). Health, stream and
//!   cache statistics merge across shards.
//!
//! This module is also the canonical home of the serving-surface types
//! ([`Health`], [`StreamStats`], [`Observed`], [`QuarantineReason`]);
//! their old `ssf_repro::stream::*` paths remain as deprecated aliases
//! for one release. Import from [`crate::prelude`] or the crate root.

use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dyngraph::{
    DeltaGraph, GraphView, NodeId, OverlayView, StorageMode, Timestamp, Window,
};
use obs::{labeled, ObsHandle, Snapshot};
use ssf_core::{CacheStats, ExtractionCache, FrozenCacheView};
use ssf_persist::SnapshotReader;

use crate::durability::{self, PersistedState};
use crate::error::{ConfigError, SsfError};
use crate::stream::{FittedModel, OnlineLinkPredictor, OnlinePredictorConfig};

/// Why an event was quarantined instead of entering the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum QuarantineReason {
    /// Both endpoints are the same node.
    SelfLoop,
    /// An identical `(u, v, t)` event was already recorded
    /// (only with [`OnlinePredictorConfig::quarantine_duplicates`]).
    Duplicate,
    /// The timestamp trails the newest observed one by more than
    /// [`OnlinePredictorConfig::max_lag`] ticks.
    Stale {
        /// How many ticks behind the stream head the event arrived.
        lag: u32,
    },
    /// The timestamp precedes the sliding window's cutoff — the link
    /// expired before it arrived (only with
    /// [`OnlinePredictorConfig::window`]). Endpoints remain known.
    OutOfWindow {
        /// The inclusive lower bound the timestamp fell short of.
        cutoff: u32,
    },
}

/// Outcome of feeding one event to [`OnlineLinkPredictor::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observed {
    /// The event entered the network.
    Accepted,
    /// The event was counted and dropped; its endpoints remain known.
    Quarantined(QuarantineReason),
}

impl Observed {
    /// `true` when the event entered the network.
    pub fn is_accepted(&self) -> bool {
        matches!(self, Observed::Accepted)
    }
}

/// Running tallies of stream hygiene and degradation.
#[derive(Debug, Default)]
pub struct StreamStats {
    /// Events that entered the network.
    pub accepted: u64,
    /// Quarantined self-loop events.
    pub self_loops: u64,
    /// Quarantined duplicate events.
    pub duplicates: u64,
    /// Quarantined stale events.
    pub stale: u64,
    /// Quarantined events whose timestamp predated the window cutoff.
    pub out_of_window: u64,
    /// Refit attempts that produced a model.
    pub successful_refits: u64,
    /// Refit attempts that failed (model unchanged).
    pub failed_refits: u64,
    /// Scores served by the common-neighbor fallback instead of the
    /// model. Atomic because scoring takes `&self`.
    pub(crate) degraded_scores: AtomicU64,
}

impl StreamStats {
    /// Total quarantined events, all reasons.
    pub fn quarantined(&self) -> u64 {
        self.self_loops + self.duplicates + self.stale + self.out_of_window
    }

    /// Scores served by the degraded fallback path.
    pub fn degraded_scores(&self) -> u64 {
        self.degraded_scores.load(Ordering::Relaxed)
    }

    /// Folds another tally into this one — how [`ShardedPredictor`]
    /// aggregates its per-shard accounts.
    pub fn merge(&mut self, other: &StreamStats) {
        self.accepted += other.accepted;
        self.self_loops += other.self_loops;
        self.duplicates += other.duplicates;
        self.stale += other.stale;
        self.out_of_window += other.out_of_window;
        self.successful_refits += other.successful_refits;
        self.failed_refits += other.failed_refits;
        self.degraded_scores
            .fetch_add(other.degraded_scores(), Ordering::Relaxed);
    }
}

impl Clone for StreamStats {
    fn clone(&self) -> Self {
        StreamStats {
            accepted: self.accepted,
            self_loops: self.self_loops,
            duplicates: self.duplicates,
            stale: self.stale,
            out_of_window: self.out_of_window,
            successful_refits: self.successful_refits,
            failed_refits: self.failed_refits,
            degraded_scores: AtomicU64::new(self.degraded_scores()),
        }
    }
}

/// Point-in-time health snapshot of an [`OnlineLinkPredictor`] (or the
/// merged view of a [`ShardedPredictor`]).
///
/// `fitted` and `model_epoch` are read from one atomically-replaced
/// model slot, so they can never disagree: `fitted` is `true` exactly
/// when `model_epoch` is `Some` (regression-tested — a snapshot taken
/// mid-refit used to be able to pair the new flag with the old model).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct Health {
    /// Whether a model is currently serving.
    pub fitted: bool,
    /// Graph revision the serving model was fitted at; `None` before the
    /// first successful refit. Always consistent with `fitted`.
    pub model_epoch: Option<u64>,
    /// Current graph revision (total accepted mutations; summed across
    /// shards in a merged health).
    pub graph_revision: u64,
    /// Events accepted into the network.
    pub accepted: u64,
    /// Events quarantined, all reasons combined.
    pub quarantined: u64,
    /// Scores served by the degraded fallback path.
    pub degraded_scores: u64,
    /// Refit attempts that produced a model.
    pub successful_refits: u64,
    /// Refit attempts that failed.
    pub failed_refits: u64,
    /// Current backoff multiplier on the refit interval (1 = healthy;
    /// the worst shard in a merged health).
    pub current_backoff: u32,
    /// Rendered error of the most recent failed refit, cleared on success.
    pub last_refit_error: Option<String>,
    /// Metrics snapshot from the predictor's recorder. Empty when the
    /// predictor runs with the no-op handle (see
    /// [`OnlineLinkPredictor::with_recorder`]).
    pub metrics: Snapshot,
}

/// Degraded scorer: `cn / (cn + 1)` over distinct common neighbors —
/// monotone in CN and bounded in `[0, 1)` like a probability.
pub(crate) fn common_neighbor_fallback<G: GraphView + ?Sized>(
    g: &G,
    u: NodeId,
    v: NodeId,
) -> f64 {
    let a = g.neighbors(u);
    let b = g.neighbors(v);
    let (mut i, mut j, mut cn) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                cn += 1;
                i += 1;
                j += 1;
            }
        }
    }
    cn as f64 / (cn as f64 + 1.0)
}

/// One immutable epoch of a predictor: graph, fitted model and a frozen
/// extraction-cache view, published together.
///
/// Created by [`OnlineLinkPredictor::snapshot`]. The snapshot is a value:
/// later `observe`/`try_refit` calls on the predictor never change it, and
/// cloning shares one `Arc` allocation. All scoring paths return exactly
/// what the predictor's own [`score`]/[`score_batch`] returned at publish
/// time, bit for bit — including the `None` cases and the common-neighbor
/// degradation.
///
/// # Example
///
/// ```rust
/// use std::thread;
///
/// use ssf_repro::prelude::*;
///
/// let mut p = OnlineLinkPredictor::new(OnlinePredictorConfig::default());
/// p.observe(0, 1, 1);
/// p.observe(1, 2, 2);
/// let snap = p.snapshot();
/// thread::scope(|s| {
///     for _ in 0..4 {
///         let snap = snap.clone();
///         s.spawn(move || snap.score_batch(&[(0, 2), (1, 2)]));
///     }
/// });
/// // The writer kept going the whole time:
/// p.observe(0, 2, 3);
/// assert_eq!(snap.epoch() + 1, p.network().revision());
/// ```
///
/// [`score`]: OnlineLinkPredictor::score
/// [`score_batch`]: OnlineLinkPredictor::score_batch
#[derive(Debug, Clone)]
pub struct ScoringSnapshot {
    inner: Arc<SnapshotInner>,
}

#[derive(Debug)]
struct SnapshotInner {
    /// Copy-on-write view of the predictor's graph at publish: a shared
    /// frozen CSR base plus the delta rows, captured with `Arc` clones.
    graph: OverlayView,
    model: Option<Arc<FittedModel>>,
    frozen: FrozenCacheView,
    /// Graph revision at publish; always equals `graph.revision()`.
    epoch: u64,
    /// `max_timestamp + 1` at publish — the fixed prediction time.
    present: Option<Timestamp>,
    /// The sliding window at publish; `None` for an unbounded
    /// predictor. Epoch-staged batchers fold it into their batch key
    /// so one batch never mixes windows.
    window: Option<Window>,
    degraded_scores: AtomicU64,
    obs: ObsHandle,
}

impl ScoringSnapshot {
    /// Publishes the predictor's current epoch as an immutable snapshot.
    /// The graph is captured as a copy-on-write [`OverlayView`] — `Arc`
    /// clones of the frozen base plus the delta rows, O(delta) rather
    /// than a graph-sized copy. The view preserves the revision counter,
    /// so the frozen cache view stays valid for the snapshot's lifetime.
    pub(crate) fn publish(p: &OnlineLinkPredictor) -> Self {
        let graph = p.published_graph();
        let epoch = graph.revision();
        let present = graph.max_timestamp().map(|t| t.saturating_add(1));
        ScoringSnapshot {
            inner: Arc::new(SnapshotInner {
                model: p.fitted.clone(),
                frozen: p.cache.freeze(),
                epoch,
                present,
                window: p.window(),
                graph,
                degraded_scores: AtomicU64::new(0),
                obs: p.recorder().clone(),
            }),
        }
    }

    /// Loads a checkpoint written by
    /// [`OnlineLinkPredictor::checkpoint`] (or the CLI `save` command)
    /// directly into a servable snapshot — no predictor, no WAL replay,
    /// no rebuild. This is the read-only fast path for replicas that
    /// serve a point-in-time state: the file's graph revision becomes
    /// the snapshot epoch and its persisted model (if any) serves
    /// scores exactly as it did on the writer.
    ///
    /// The extraction cache starts cold (the on-disk format does not
    /// carry memoized subgraphs — they are pure functions of the graph)
    /// and telemetry is detached; both only affect speed, never
    /// scores.
    ///
    /// # Errors
    ///
    /// [`SsfError::Io`] when the file cannot be read,
    /// [`SsfError::Corrupt`] when any section fails its checksum or
    /// the decoded state violates its invariants.
    pub fn load(path: &Path) -> Result<Self, SsfError> {
        let reader = SnapshotReader::open(path)?;
        let PersistedState {
            graph, model, meta, ..
        } = durability::decode_state(&reader)?;
        let graph = DeltaGraph::new(Arc::new(graph)).publish();
        let epoch = graph.revision();
        // Saturate: the graph comes off disk, and a max timestamp of
        // u32::MAX must not wrap the serving horizon back to 0.
        let present = graph.max_timestamp().map(|t| t.saturating_add(1));
        let model = match (model, meta.model_epoch) {
            (Some(model), Some(epoch)) => {
                Some(Arc::new(FittedModel { model, epoch }))
            }
            _ => None,
        };
        Ok(ScoringSnapshot {
            inner: Arc::new(SnapshotInner {
                graph,
                model,
                frozen: ExtractionCache::new().freeze(),
                epoch,
                present,
                window: meta.window,
                degraded_scores: AtomicU64::new(0),
                obs: ObsHandle::noop(),
            }),
        })
    }

    /// The graph revision this snapshot was published at. Equals
    /// [`Self::graph`]`.revision()` — every epoch is internally
    /// consistent by construction.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// The physical layout of the frozen base graph this snapshot
    /// serves from — [`StorageMode::Wide`] or [`StorageMode::Compact`],
    /// never [`StorageMode::Auto`] (the policy has already resolved by
    /// publish time). Exposed so operators can confirm which
    /// representation a replica is actually holding; the same value is
    /// emitted as the `ssf.graph.storage_mode` gauge.
    pub fn storage_mode(&self) -> StorageMode {
        self.inner.graph.base().storage_mode()
    }

    /// Graph revision the serving model was fitted at; `None` when no
    /// model had been fitted by publish time. Never exceeds
    /// [`Self::epoch`].
    pub fn model_epoch(&self) -> Option<u64> {
        self.inner.model.as_ref().map(|m| m.epoch)
    }

    /// Whether a fitted model is serving (equivalent to
    /// `model_epoch().is_some()`).
    pub fn is_fitted(&self) -> bool {
        self.inner.model.is_some()
    }

    /// The frozen graph view this snapshot scores against.
    pub fn graph(&self) -> &OverlayView {
        &self.inner.graph
    }

    /// Links the publishing predictor had accumulated on top of its
    /// shared frozen base — the delta the publish cost was proportional
    /// to (0 right after a compaction or for an untouched graph).
    pub fn delta_links(&self) -> usize {
        self.inner.graph.delta_link_count()
    }

    /// The fixed prediction timestamp (`max_timestamp + 1` at publish),
    /// `None` for an empty network.
    pub fn present(&self) -> Option<Timestamp> {
        self.inner.present
    }

    /// The sliding window this snapshot was published under, `None`
    /// for an unbounded predictor. Checkpoints round-trip it, so a
    /// replica loaded with [`Self::load`] reports the writer's window.
    pub fn window(&self) -> Option<Window> {
        self.inner.window
    }

    /// Scores served by the common-neighbor fallback *through this
    /// snapshot* (per-snapshot tally; the predictor's own
    /// [`StreamStats::degraded_scores`] is not retro-incremented).
    pub fn degraded_scores(&self) -> u64 {
        self.inner.degraded_scores.load(Ordering::Relaxed)
    }

    /// Frozen cache warmth carried over from the predictor, as
    /// `(balls, pairs)` entry counts.
    pub fn frozen_entries(&self) -> (usize, usize) {
        self.inner.frozen.len()
    }

    /// Scores one candidate pair — same contract and same bits as
    /// [`OnlineLinkPredictor::score`] at publish time, but through
    /// `&self`, from any thread.
    pub fn score(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let _span = self.inner.obs.span("ssf.serve.score");
        let inner = &*self.inner;
        let n = inner.graph.node_count() as NodeId;
        if u == v || u >= n || v >= n {
            return None;
        }
        let present = inner.present?;
        let fitted = inner.model.as_deref()?;
        let attempt = panic::catch_unwind(AssertUnwindSafe(|| {
            fitted.model.try_score(&inner.graph, u, v, present)
        }));
        match attempt {
            Ok(Ok(p)) => Some(p),
            Ok(Err(_)) | Err(_) => {
                inner.degraded_scores.fetch_add(1, Ordering::Relaxed);
                inner.obs.counter("ssf.serve.degraded_scores", 1);
                Some(common_neighbor_fallback(&inner.graph, u, v))
            }
        }
    }

    /// Scores a batch serially against a thread-local cache seeded with
    /// the snapshot's frozen view — bit-identical to calling
    /// [`Self::score`] per pair, with the warm memos of the publishing
    /// predictor already in place.
    pub fn score_batch(&self, pairs: &[(NodeId, NodeId)]) -> Vec<Option<f64>> {
        let _span = self.inner.obs.span("ssf.serve.score_batch");
        self.inner
            .obs
            .counter("ssf.serve.scored", pairs.len() as u64);
        let mut cache = self.local_cache();
        self.score_chunk(pairs, &mut cache)
    }

    /// Fans a batch out over `threads` scoped worker threads, each with
    /// its own frozen-seeded cache, and reassembles results in input
    /// order. Bit-identical to [`Self::score_batch`] for every slot:
    /// caches only memoize values the pipeline would recompute
    /// identically, so the chunking never shows in the output.
    ///
    /// Degenerate inputs are handled uniformly across every batch path
    /// (snapshot, sharded, coalesced): `threads == 0` is clamped to 1
    /// and an empty batch returns an empty vector without spawning
    /// threads or opening spans. Callers that want `threads == 0`
    /// rejected as a typed error should validate through
    /// [`CoalesceConfig::builder`](crate::coalesce::CoalesceConfig::builder).
    pub fn score_batch_parallel(
        &self,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> Vec<Option<f64>> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let threads = threads.max(1).min(pairs.len());
        if threads == 1 {
            return self.score_batch(pairs);
        }
        let _span = self.inner.obs.span("ssf.serve.score_batch_parallel");
        self.inner
            .obs
            .counter("ssf.serve.scored", pairs.len() as u64);
        let chunk = pairs.len().div_ceil(threads);
        let mut out: Vec<Option<f64>> = Vec::with_capacity(pairs.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = pairs
                .chunks(chunk)
                .map(|c| {
                    (
                        c.len(),
                        s.spawn(move || {
                            let mut cache = self.local_cache();
                            self.score_chunk(c, &mut cache)
                        }),
                    )
                })
                .collect();
            for (len, h) in handles {
                match h.join() {
                    Ok(scores) => out.extend(scores),
                    // Unreachable (workers catch per-pair panics), but a
                    // dying worker must not shift later chunks.
                    Err(_) => out.extend(std::iter::repeat_n(None, len)),
                }
            }
        });
        out
    }

    /// A fresh mutable cache seeded with the snapshot's frozen view.
    fn local_cache(&self) -> ExtractionCache {
        let mut cache = ExtractionCache::with_frozen(self.inner.frozen.clone());
        cache.set_recorder(self.inner.obs.clone());
        cache
    }

    /// The shared serial scoring loop behind both batch paths.
    fn score_chunk(
        &self,
        pairs: &[(NodeId, NodeId)],
        cache: &mut ExtractionCache,
    ) -> Vec<Option<f64>> {
        let inner = &*self.inner;
        let n = inner.graph.node_count() as NodeId;
        let mut out = Vec::with_capacity(pairs.len());
        for &(u, v) in pairs {
            if u == v || u >= n || v >= n {
                out.push(None);
                continue;
            }
            let (Some(present), Some(fitted)) =
                (inner.present, inner.model.as_deref())
            else {
                out.push(None);
                continue;
            };
            let graph = &inner.graph;
            let attempt = panic::catch_unwind(AssertUnwindSafe(|| {
                fitted.model.try_score_cached(graph, u, v, present, cache)
            }));
            out.push(match attempt {
                Ok(Ok(p)) => Some(p),
                Ok(Err(_)) | Err(_) => {
                    inner.degraded_scores.fetch_add(1, Ordering::Relaxed);
                    inner.obs.counter("ssf.serve.degraded_scores", 1);
                    Some(common_neighbor_fallback(graph, u, v))
                }
            });
        }
        out
    }
}

/// N independent single-writer ingest cores over a partition of the node
/// space.
///
/// A pair `(u, v)` is owned by shard `min(u, v) % N` — one deterministic
/// home per pair for both ingestion and scoring, so cross-shard pairs
/// never need coordination. Each shard is a full [`OnlineLinkPredictor`]
/// over the substream routed to it; shard counts divide the refit cost
/// and let [`Self::observe_batch_parallel`] ingest disjoint substreams on
/// parallel threads.
///
/// The trade-off is explicit: a shard scores a pair against *its own*
/// substream, not the global graph (see DESIGN.md §9). With one shard the
/// predictor is exactly the unsharded one, bit for bit; with N shards
/// each pair scores exactly as an unsharded predictor fed the owner's
/// substream would — both properties are tested in
/// `tests/concurrency.rs`.
#[derive(Debug)]
pub struct ShardedPredictor {
    shards: Vec<OnlineLinkPredictor>,
    /// Pre-rendered shard indices for labeled counters.
    labels: Vec<String>,
    obs: ObsHandle,
}

impl ShardedPredictor {
    /// Creates `shards` empty ingest cores sharing one configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroShards`] for `shards == 0`, plus any
    /// [`MethodOptions::validate`](crate::methods::MethodOptions::validate)
    /// rejection of the configuration's hyperparameters.
    pub fn new(
        config: OnlinePredictorConfig,
        shards: usize,
    ) -> Result<Self, SsfError> {
        Self::with_recorder(config, shards, ObsHandle::noop())
    }

    /// [`Self::new`] with telemetry: per-shard quarantine counters under
    /// the labeled family `ssf.serve.shard.quarantined{shard=…}`, shared
    /// `ssf.stream.*` instrumentation inside every shard, and
    /// `ssf.serve.ingest_batch` spans around parallel ingestion.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::new`].
    pub fn with_recorder(
        config: OnlinePredictorConfig,
        shards: usize,
        obs: ObsHandle,
    ) -> Result<Self, SsfError> {
        if shards == 0 {
            return Err(ConfigError::ZeroShards.into());
        }
        config.method.validate()?;
        Ok(ShardedPredictor {
            shards: (0..shards)
                .map(|_| {
                    OnlineLinkPredictor::with_recorder(
                        config.clone(),
                        obs.clone(),
                    )
                })
                .collect(),
            labels: (0..shards).map(|i| i.to_string()).collect(),
            obs,
        })
    }

    /// Number of ingest cores.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The owner shard of a pair: `min(u, v) % N`.
    pub fn shard_of(&self, u: NodeId, v: NodeId) -> usize {
        u.min(v) as usize % self.shards.len()
    }

    /// Borrows one shard's predictor, `None` out of range.
    pub fn shard(&self, index: usize) -> Option<&OnlineLinkPredictor> {
        self.shards.get(index)
    }

    /// Routes one stream event to its owner shard; never panics.
    pub fn observe(&mut self, u: NodeId, v: NodeId, t: Timestamp) -> Observed {
        let idx = self.shard_of(u, v);
        let outcome = self.shards[idx].observe(u, v, t);
        if !outcome.is_accepted() && self.obs.enabled() {
            self.obs.counter(
                &labeled(
                    "ssf.serve.shard.quarantined",
                    &[("shard", &self.labels[idx])],
                ),
                1,
            );
        }
        outcome
    }

    /// Partitions a batch of events by owner shard and ingests every
    /// shard's substream on its own scoped thread — the near-linear
    /// ingest-scaling path. Within a shard, events keep their order in
    /// `events`. Returns the number of accepted events.
    ///
    /// With one shard — or on a machine without usable parallelism — the
    /// batch ingests serially instead: spawning threads for substreams
    /// that cannot run concurrently only adds partition + spawn + join
    /// overhead (the measured 1→4-shard throughput *drop* in
    /// `BENCH_concurrent_serving.json` on a single-core host). Events
    /// route to shards in batch order either way, so both paths produce
    /// identical shard states by construction; empty substreams never
    /// spawn a thread.
    pub fn observe_batch_parallel(
        &mut self,
        events: &[(NodeId, NodeId, Timestamp)],
    ) -> u64 {
        let n = self.shards.len();
        let parallelism = std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get);
        let _span = self.obs.span("ssf.serve.ingest_batch");
        let mut accepted = 0u64;
        let mut quarantined: Vec<u64> = vec![0; n];
        if n == 1 || parallelism <= 1 {
            for &(u, v, t) in events {
                let idx = u.min(v) as usize % n;
                if self.shards[idx].observe(u, v, t).is_accepted() {
                    accepted += 1;
                } else {
                    quarantined[idx] += 1;
                }
            }
        } else {
            let mut per: Vec<Vec<(NodeId, NodeId, Timestamp)>> =
                vec![Vec::new(); n];
            for &(u, v, t) in events {
                per[u.min(v) as usize % n].push((u, v, t));
            }
            let shards = &mut self.shards;
            std::thread::scope(|s| {
                let handles: Vec<_> = shards
                    .iter_mut()
                    .zip(&per)
                    .enumerate()
                    .filter(|(_, (_, evs))| !evs.is_empty())
                    .map(|(i, (shard, evs))| {
                        let handle = s.spawn(move || {
                            let (mut acc, mut quar) = (0u64, 0u64);
                            for &(u, v, t) in evs {
                                if shard.observe(u, v, t).is_accepted() {
                                    acc += 1;
                                } else {
                                    quar += 1;
                                }
                            }
                            (acc, quar)
                        });
                        (i, handle)
                    })
                    .collect();
                for (i, h) in handles {
                    if let Ok((acc, quar)) = h.join() {
                        accepted += acc;
                        quarantined[i] = quar;
                    }
                }
            });
        }
        if self.obs.enabled() {
            for (label, &quar) in self.labels.iter().zip(&quarantined) {
                if quar > 0 {
                    self.obs.counter(
                        &labeled(
                            "ssf.serve.shard.quarantined",
                            &[("shard", label)],
                        ),
                        quar,
                    );
                }
            }
        }
        accepted
    }

    /// Forces a refit on every shard, attempting all of them even when
    /// some fail.
    ///
    /// # Errors
    ///
    /// The first shard failure, after all shards were attempted. Shards
    /// that fitted keep their new model either way.
    pub fn try_refit_all(&mut self) -> Result<(), SsfError> {
        let mut first_err = None;
        for shard in &mut self.shards {
            if let Err(e) = shard.try_refit() {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Routes a pair to its owner shard's [`OnlineLinkPredictor::score`].
    pub fn score(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.shards[self.shard_of(u, v)].score(u, v)
    }

    /// Scores a batch by grouping pairs per owner shard, scoring each
    /// group through the shard's cached batch path, and scattering the
    /// results back into input order.
    pub fn score_batch(
        &mut self,
        pairs: &[(NodeId, NodeId)],
    ) -> Vec<Option<f64>> {
        let n = self.shards.len();
        let mut slots: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut groups: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); n];
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let owner = u.min(v) as usize % n;
            slots[owner].push(i);
            groups[owner].push((u, v));
        }
        let mut out = vec![None; pairs.len()];
        for (shard, (slots, group)) in
            self.shards.iter_mut().zip(slots.iter().zip(&groups))
        {
            if group.is_empty() {
                continue;
            }
            for (&i, score) in slots.iter().zip(shard.score_batch(group)) {
                out[i] = score;
            }
        }
        out
    }

    /// Publishes every shard's current epoch as one routed snapshot.
    pub fn snapshot(&self) -> ShardedSnapshot {
        ShardedSnapshot {
            shards: self.shards.iter().map(|s| s.snapshot()).collect(),
        }
    }

    /// Merged stream tallies, summed across shards.
    pub fn stream_stats(&self) -> StreamStats {
        let mut total = StreamStats::default();
        for shard in &self.shards {
            total.merge(shard.stats());
        }
        total
    }

    /// Merged extraction-cache tallies, summed across shards.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            total.merge(&shard.cache_stats());
        }
        total
    }

    /// Merged health: counters are summed, `fitted` is true when *any*
    /// shard serves a model (a pair owned by an unfitted shard still
    /// scores `None` — check [`Self::shard_healths`] for the full
    /// picture), `model_epoch` is the stalest fitted shard's epoch,
    /// `graph_revision` the summed revisions, `current_backoff` the worst
    /// shard's, and `last_refit_error` the first shard's pending error.
    pub fn health(&self) -> Health {
        let stats = self.stream_stats();
        let mut health = Health {
            fitted: false,
            model_epoch: None,
            graph_revision: 0,
            accepted: stats.accepted,
            quarantined: stats.quarantined(),
            degraded_scores: stats.degraded_scores(),
            successful_refits: stats.successful_refits,
            failed_refits: stats.failed_refits,
            current_backoff: 1,
            last_refit_error: None,
            metrics: self.obs.snapshot(),
        };
        for shard in &self.shards {
            let h = shard.health();
            health.fitted |= h.fitted;
            health.model_epoch = match (health.model_epoch, h.model_epoch) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            health.graph_revision += h.graph_revision;
            health.current_backoff =
                health.current_backoff.max(h.current_backoff);
            if health.last_refit_error.is_none() {
                health.last_refit_error = h.last_refit_error;
            }
        }
        health
    }

    /// Per-shard health snapshots, in shard order.
    pub fn shard_healths(&self) -> Vec<Health> {
        self.shards.iter().map(|s| s.health()).collect()
    }
}

/// Immutable snapshots of every shard, routed like the predictor:
/// `min(u, v) % N` picks the [`ScoringSnapshot`] a pair scores against.
///
/// `Send + Sync` and cheap to clone, like the per-shard snapshots it
/// wraps.
#[derive(Debug, Clone)]
pub struct ShardedSnapshot {
    shards: Vec<ScoringSnapshot>,
}

impl ShardedSnapshot {
    /// Number of shard snapshots.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The owner shard of a pair: `min(u, v) % N`.
    pub fn shard_of(&self, u: NodeId, v: NodeId) -> usize {
        u.min(v) as usize % self.shards.len()
    }

    /// Borrows one shard's snapshot, `None` out of range.
    pub fn shard(&self, index: usize) -> Option<&ScoringSnapshot> {
        self.shards.get(index)
    }

    /// Publish epochs of every shard snapshot, in shard order.
    pub fn epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.epoch()).collect()
    }

    /// Routes a pair to its owner snapshot's [`ScoringSnapshot::score`].
    pub fn score(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.shards[self.shard_of(u, v)].score(u, v)
    }

    /// Scores a batch by owner-shard grouping, serially per shard.
    pub fn score_batch(&self, pairs: &[(NodeId, NodeId)]) -> Vec<Option<f64>> {
        self.score_batch_with(pairs, |snap, group| snap.score_batch(group))
    }

    /// Scores a batch with each shard's group fanned out over up to
    /// `threads` worker threads (divided across shards with work), in
    /// parallel across shards. Bit-identical to [`Self::score_batch`].
    ///
    /// Degenerate inputs follow the same contract as
    /// [`ScoringSnapshot::score_batch_parallel`]: `threads == 0` is
    /// clamped to 1 and an empty batch returns an empty vector without
    /// spawning threads.
    pub fn score_batch_parallel(
        &self,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> Vec<Option<f64>> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let threads = threads.max(1);
        let busy = self.shards.len().min(pairs.len());
        let per_shard = threads.div_ceil(busy);
        self.score_batch_with(pairs, |snap, group| {
            snap.score_batch_parallel(group, per_shard)
        })
    }

    /// Shared group/score/scatter skeleton of the batch paths. The
    /// scoring closure runs per shard on scoped threads; input order is
    /// restored in the output.
    fn score_batch_with<F>(
        &self,
        pairs: &[(NodeId, NodeId)],
        score: F,
    ) -> Vec<Option<f64>>
    where
        F: Fn(&ScoringSnapshot, &[(NodeId, NodeId)]) -> Vec<Option<f64>> + Sync,
    {
        let n = self.shards.len();
        let mut slots: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut groups: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); n];
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let owner = u.min(v) as usize % n;
            slots[owner].push(i);
            groups[owner].push((u, v));
        }
        let mut out = vec![None; pairs.len()];
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .zip(slots.iter().zip(&groups))
                .filter(|(_, (_, group))| !group.is_empty())
                .map(|(snap, (slots, group))| {
                    let score = &score;
                    (slots, s.spawn(move || score(snap, group)))
                })
                .collect();
            for (slots, h) in handles {
                if let Ok(scores) = h.join() {
                    for (&i, sc) in slots.iter().zip(scores) {
                        out[i] = sc;
                    }
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::MethodOptions;
    use datasets::DatasetSpec;

    fn quick_config() -> OnlinePredictorConfig {
        OnlinePredictorConfig {
            method: MethodOptions {
                nm_epochs: 15,
                ..MethodOptions::default()
            },
            refit_every: 5,
            min_positives: 10,
            history_folds: 1,
            ..OnlinePredictorConfig::default()
        }
    }

    fn fitted_predictor() -> OnlineLinkPredictor {
        let spec = DatasetSpec::coauthor().scaled(0.15);
        let g = spec.generate(9);
        let mut links: Vec<_> = g.links().collect();
        links.sort_by_key(|l| l.t);
        let mut p = OnlineLinkPredictor::new(quick_config());
        for l in links {
            p.observe(l.u, l.v, l.t);
        }
        assert!(p.is_fitted());
        p
    }

    #[test]
    fn snapshot_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ScoringSnapshot>();
        assert_send_sync::<ShardedSnapshot>();
        assert_send_sync::<ShardedPredictor>();
    }

    #[test]
    fn snapshot_matches_predictor_bit_for_bit() {
        let mut p = fitted_predictor();
        let n = p.network().node_count() as NodeId;
        let pairs: Vec<(NodeId, NodeId)> =
            vec![(0, 1), (2, 5), (3, 3), (0, n + 4), (1, 0), (0, 1)];
        let snap = p.snapshot();
        assert_eq!(snap.epoch(), p.network().revision());
        assert_eq!(snap.model_epoch().is_some(), snap.is_fitted());
        let serial: Vec<_> =
            pairs.iter().map(|&(u, v)| p.score(u, v)).collect();
        let via_score: Vec<_> =
            pairs.iter().map(|&(u, v)| snap.score(u, v)).collect();
        let via_batch = snap.score_batch(&pairs);
        let via_parallel = snap.score_batch_parallel(&pairs, 3);
        let via_predictor_batch = p.score_batch(&pairs);
        for (name, got) in [
            ("score", &via_score),
            ("score_batch", &via_batch),
            ("score_batch_parallel", &via_parallel),
            ("predictor score_batch", &via_predictor_batch),
        ] {
            for (i, (a, b)) in serial.iter().zip(got.iter()).enumerate() {
                assert_eq!(
                    a.map(f64::to_bits),
                    b.map(f64::to_bits),
                    "{name}: pair {:?} diverged",
                    pairs[i]
                );
            }
        }
    }

    #[test]
    fn republish_without_observes_reuses_the_frozen_base() {
        let p = fitted_predictor();
        let s1 = p.snapshot();
        let s2 = p.snapshot();
        assert_eq!(s1.epoch(), s2.epoch());
        assert_eq!(s1.delta_links(), s2.delta_links());
        assert!(
            Arc::ptr_eq(s1.graph().base(), s2.graph().base()),
            "publish without new observes must not rebuild the CSR base"
        );
    }

    #[test]
    fn snapshot_is_immutable_under_later_observes() {
        let mut p = fitted_predictor();
        let snap = p.snapshot();
        let before = snap.score(0, 1);
        let epoch = snap.epoch();
        let t = p.network().max_timestamp().unwrap_or(0) + 1;
        assert!(p.observe(0, 1, t).is_accepted());
        assert!(p.observe(2, 9, t + 1).is_accepted());
        assert_eq!(snap.epoch(), epoch, "published epoch is frozen");
        assert_eq!(
            snap.score(0, 1).map(f64::to_bits),
            before.map(f64::to_bits),
            "snapshot scores must not move with the live graph"
        );
        assert!(p.network().revision() > epoch);
    }

    #[test]
    fn unfitted_snapshot_scores_none_consistently() {
        let mut p = OnlineLinkPredictor::new(quick_config());
        p.observe(0, 1, 1);
        p.observe(1, 2, 2);
        let snap = p.snapshot();
        assert!(!snap.is_fitted());
        assert_eq!(snap.model_epoch(), None);
        assert_eq!(snap.score(0, 2), None);
        assert_eq!(snap.score_batch(&[(0, 2)]), vec![None]);
        assert_eq!(snap.score_batch_parallel(&[(0, 2), (1, 0)], 2).len(), 2);
    }

    #[test]
    fn sharded_predictor_rejects_zero_shards() {
        let err = ShardedPredictor::new(quick_config(), 0);
        assert!(matches!(
            err,
            Err(SsfError::Config(ConfigError::ZeroShards))
        ));
    }

    #[test]
    fn sharded_routing_is_deterministic_by_min_endpoint() {
        let sharded =
            ShardedPredictor::new(quick_config(), 3).expect("valid config");
        assert_eq!(sharded.num_shards(), 3);
        assert_eq!(sharded.shard_of(4, 7), 1);
        assert_eq!(sharded.shard_of(7, 4), 1, "order must not matter");
        assert_eq!(sharded.shard_of(9, 2), 2);
        assert!(sharded.shard(2).is_some());
        assert!(sharded.shard(3).is_none());
    }

    #[test]
    fn sharded_stats_and_health_merge_across_shards() {
        let mut sharded =
            ShardedPredictor::new(quick_config(), 2).expect("valid config");
        sharded.observe(0, 1, 1);
        sharded.observe(2, 3, 1);
        sharded.observe(5, 5, 2); // quarantined on 5 % 2 == shard 1
        let stats = sharded.stream_stats();
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.self_loops, 1);
        let health = sharded.health();
        assert!(!health.fitted);
        assert_eq!(health.accepted, 2);
        assert_eq!(health.quarantined, 1);
        // Revisions count every graph mutation (node growth included),
        // so the merged value is the exact sum over shards.
        let revisions: u64 = (0..sharded.num_shards())
            .filter_map(|i| sharded.shard(i))
            .map(|p| p.network().revision())
            .sum();
        assert!(revisions > 0);
        assert_eq!(health.graph_revision, revisions);
        assert_eq!(sharded.shard_healths().len(), 2);
    }

    #[test]
    fn observe_batch_parallel_matches_serial_routing() {
        let spec = DatasetSpec::coauthor().scaled(0.12);
        let g = spec.generate(11);
        let mut events: Vec<_> = g.links().map(|l| (l.u, l.v, l.t)).collect();
        events.sort_by_key(|&(_, _, t)| t);
        let mut serial =
            ShardedPredictor::new(quick_config(), 3).expect("valid config");
        for &(u, v, t) in &events {
            serial.observe(u, v, t);
        }
        let mut parallel =
            ShardedPredictor::new(quick_config(), 3).expect("valid config");
        let accepted = parallel.observe_batch_parallel(&events);
        assert_eq!(accepted, serial.stream_stats().accepted);
        for i in 0..3 {
            let a = serial.shard(i).expect("shard");
            let b = parallel.shard(i).expect("shard");
            assert_eq!(
                a.network().link_count(),
                b.network().link_count(),
                "shard {i} ingested a different substream"
            );
            assert_eq!(a.network().revision(), b.network().revision());
        }
    }
}
