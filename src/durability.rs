//! Durable predictor state: snapshot codecs, the on-disk directory
//! layout and recovery reporting for
//! [`OnlineLinkPredictor`](crate::stream::OnlineLinkPredictor).
//!
//! A durability directory holds two kinds of files:
//!
//! * `snapshot-<revision>-<seq>.ssf1` — a full checkpoint in the
//!   [`ssf_persist::snapshot`] container: the frozen graph CSR
//!   (`graph.*` sections), the serving model (`model`, absent when
//!   unfitted), and the predictor metadata (`pmeta`) this module
//!   encodes — refit clock, backoff, stream statistics, the WAL
//!   sequence the snapshot covers, and a fingerprint of the
//!   configuration it was written under.
//! * `wal-<seq>.log` — write-ahead log segments of every `observe`
//!   call since the covering snapshot (see [`ssf_persist::wal`]).
//!
//! Recovery (`OnlineLinkPredictor::open`) loads the newest valid
//! snapshot, replays the WAL tail through the normal `observe` path,
//! and reports exactly what it found in a [`RecoveryReport`] — lossy
//! outcomes (a torn WAL tail, a corrupt snapshot that had to be
//! skipped) are recovered from by default but never hidden.

use std::io;
use std::path::{Path, PathBuf};

use dyngraph::{FrozenGraph, Window};
use ssf_persist::codec::{fnv1a64, put_u32, put_u64, Cursor};
use ssf_persist::{
    decode_graph, encode_graph, FsyncPolicy, PersistError, SnapshotReader,
    SnapshotWriter, WalWriter,
};

use crate::model::SsfnmModel;
use crate::stream::OnlinePredictorConfig;

/// Snapshot section holding the predictor metadata.
pub(crate) const SEC_PMETA: &str = "pmeta";
/// Snapshot section holding the serialized serving model (absent when
/// the predictor was unfitted at checkpoint time).
pub(crate) const SEC_MODEL: &str = "model";
/// Snapshot section holding the pending refit error text, if any.
pub(crate) const SEC_REFIT_ERROR: &str = "pmeta.err";
/// Snapshot section holding the sliding-window state (width, horizon,
/// then the out-of-window quarantine tally; absent when the predictor
/// has no window configured). A separate optional section rather than
/// a `pmeta` suffix: `pmeta` decoding rejects trailing bytes, so
/// extending it would break version-2 readers, while an unknown extra
/// section is simply ignored by them.
pub(crate) const SEC_WINDOW: &str = "pmeta.window";

/// How a durable predictor trades write latency for crash safety.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityPolicy {
    /// When WAL appends reach stable storage; see [`FsyncPolicy`].
    pub fsync: FsyncPolicy,
    /// WAL segment rotation threshold in bytes. Checkpoints reclaim
    /// whole segments, so smaller segments truncate at finer grain.
    pub segment_bytes: u64,
    /// Checkpoints retained after a new one lands (≥ 1). Older
    /// snapshots are recovery fallbacks if the newest turns out to be
    /// corrupt on a later open.
    pub keep_snapshots: usize,
}

impl Default for DurabilityPolicy {
    fn default() -> Self {
        DurabilityPolicy {
            fsync: FsyncPolicy::Always,
            segment_bytes: 4 * 1024 * 1024,
            keep_snapshots: 2,
        }
    }
}

/// What recovery found on disk and what it did about it.
///
/// Returned by `OnlineLinkPredictor::open`. A report with
/// [`is_lossy`](RecoveryReport::is_lossy) `false` means the recovered
/// predictor is bit-identical to the pre-crash one at its final logged
/// event; a lossy report names exactly what was dropped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct RecoveryReport {
    /// Graph revision of the snapshot recovery started from; `None`
    /// for a cold start (no usable snapshot, full WAL replay).
    pub snapshot_revision: Option<u64>,
    /// WAL records applied on top of the snapshot.
    pub records_replayed: u64,
    /// Bytes discarded as a torn or corrupt WAL tail.
    pub bytes_dropped: u64,
    /// `true` if the WAL had corruption past its valid prefix (the
    /// prefix was recovered; the tail is gone).
    pub tail_truncated: bool,
    /// Snapshot files that failed validation and were skipped in
    /// favor of an older snapshot or a cold start.
    pub corrupt_snapshots: Vec<PathBuf>,
    /// WAL segment files deleted while repairing the log.
    pub segments_removed: u64,
}

impl RecoveryReport {
    /// `true` when any durable state could not be recovered — a torn
    /// WAL tail or a skipped corrupt snapshot. `restore --strict`
    /// refuses lossy recoveries.
    pub fn is_lossy(&self) -> bool {
        self.tail_truncated || !self.corrupt_snapshots.is_empty()
    }
}

/// The live durability attachment of a predictor: its directory, the
/// policy it was opened with, and the single WAL writer.
#[derive(Debug)]
pub(crate) struct Durability {
    pub(crate) dir: PathBuf,
    pub(crate) policy: DurabilityPolicy,
    pub(crate) wal: WalWriter,
    /// Rendered error of the most recent failed WAL append. Sticky
    /// until a successful checkpoint re-establishes full durability —
    /// a later successful append cannot clear it, because the failed
    /// event is still absent from the durable history. A failed append
    /// degrades durability (the event is in memory but not on disk)
    /// without dropping the event.
    pub(crate) last_wal_error: Option<String>,
}

/// Fingerprint of the configuration a snapshot was written under.
///
/// Restoring under a different configuration would silently change
/// refit cadence, quarantine rules and model hyperparameters mid-
/// history; the fingerprint makes the mismatch a hard error instead.
pub(crate) fn config_fingerprint(config: &OnlinePredictorConfig) -> u64 {
    fnv1a64(format!("{config:?}").as_bytes())
}

/// Scalar predictor state persisted alongside the graph and model.
///
/// Everything `observe` consults when deciding whether to refit — plus
/// the stream statistics — so a recovered predictor replays the WAL
/// tail with exactly the decisions the pre-crash predictor made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PredictorMeta {
    pub(crate) fingerprint: u64,
    /// First WAL sequence *not* covered by this snapshot — replay
    /// starts here.
    pub(crate) next_seq: u64,
    pub(crate) model_epoch: Option<u64>,
    pub(crate) last_fit_attempt: Option<u32>,
    pub(crate) backoff: u32,
    pub(crate) accepted: u64,
    pub(crate) self_loops: u64,
    pub(crate) duplicates: u64,
    pub(crate) stale: u64,
    pub(crate) successful_refits: u64,
    pub(crate) failed_refits: u64,
    pub(crate) degraded_scores: u64,
    /// Sliding window at checkpoint time; `None` when the predictor is
    /// unbounded. The width is also pinned by the configuration
    /// fingerprint; carrying it here keeps standalone replicas
    /// ([`ScoringSnapshot::load`](crate::serve::ScoringSnapshot::load),
    /// which never sees the configuration) self-describing.
    pub(crate) window: Option<Window>,
    /// Events quarantined for predating the window cutoff. Lives in the
    /// window section (always zero for unbounded predictors, which
    /// write no such section).
    pub(crate) out_of_window: u64,
}

/// A fully decoded snapshot, ready to install into a predictor.
#[derive(Debug)]
pub(crate) struct PersistedState {
    pub(crate) graph: FrozenGraph,
    pub(crate) model: Option<SsfnmModel>,
    pub(crate) meta: PredictorMeta,
    pub(crate) last_refit_error: Option<String>,
}

/// Encodes the predictor sections (graph + model + metadata) into `w`.
///
/// # Errors
///
/// Propagates the model serializer's `io::Error` (unreachable for the
/// in-memory writer, but typed rather than swallowed).
pub(crate) fn encode_state(
    w: &mut SnapshotWriter,
    graph: &FrozenGraph,
    model: Option<&SsfnmModel>,
    meta: &PredictorMeta,
    last_refit_error: Option<&str>,
) -> io::Result<()> {
    encode_graph(graph, w);
    let mut pm = Vec::with_capacity(8 * 10 + 4 * 4);
    put_u64(&mut pm, meta.fingerprint);
    put_u64(&mut pm, meta.next_seq);
    put_u32(&mut pm, u32::from(meta.model_epoch.is_some()));
    put_u64(&mut pm, meta.model_epoch.unwrap_or(0));
    put_u32(&mut pm, u32::from(meta.last_fit_attempt.is_some()));
    put_u32(&mut pm, meta.last_fit_attempt.unwrap_or(0));
    put_u32(&mut pm, meta.backoff);
    put_u64(&mut pm, meta.accepted);
    put_u64(&mut pm, meta.self_loops);
    put_u64(&mut pm, meta.duplicates);
    put_u64(&mut pm, meta.stale);
    put_u64(&mut pm, meta.successful_refits);
    put_u64(&mut pm, meta.failed_refits);
    put_u64(&mut pm, meta.degraded_scores);
    w.section(SEC_PMETA, pm);
    if let Some(window) = meta.window {
        let mut wh = Vec::with_capacity(16);
        put_u32(&mut wh, window.width);
        put_u32(&mut wh, window.horizon);
        put_u64(&mut wh, meta.out_of_window);
        w.section(SEC_WINDOW, wh);
    }
    if let Some(model) = model {
        let mut buf = Vec::new();
        model.save(&mut buf)?;
        w.section(SEC_MODEL, buf);
    }
    if let Some(err) = last_refit_error {
        w.section(SEC_REFIT_ERROR, err.as_bytes().to_vec());
    }
    Ok(())
}

fn corrupt(section: &str, detail: impl Into<String>) -> PersistError {
    PersistError::Corrupt {
        section: section.to_string(),
        detail: detail.into(),
    }
}

/// Reads a `0`/`1` presence flag, rejecting any other value.
fn flag(c: &mut Cursor<'_>) -> Result<bool, PersistError> {
    match c.u32()? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(corrupt(SEC_PMETA, format!("flag byte is {other}"))),
    }
}

/// Decodes the predictor sections of a validated snapshot.
///
/// # Errors
///
/// [`PersistError::Corrupt`] when a section is missing, malformed, or
/// the sections disagree with each other (a model without an epoch, an
/// epoch without a model).
pub(crate) fn decode_state(
    r: &SnapshotReader,
) -> Result<PersistedState, PersistError> {
    let graph = decode_graph(r)?;
    let mut c = Cursor::new(SEC_PMETA, r.require(SEC_PMETA)?);
    let fingerprint = c.u64()?;
    let next_seq = c.u64()?;
    let has_epoch = flag(&mut c)?;
    let epoch = c.u64()?;
    let has_lfa = flag(&mut c)?;
    let lfa = c.u32()?;
    let backoff = c.u32()?;
    let (window, out_of_window) = match r.section(SEC_WINDOW) {
        Some(bytes) => {
            let mut wc = Cursor::new(SEC_WINDOW, bytes);
            let width = wc.u32()?;
            let horizon = wc.u32()?;
            let out_of_window = wc.u64()?;
            wc.finish()?;
            (Some(Window { width, horizon }), out_of_window)
        }
        // Version-2 snapshots predate windows: unbounded.
        None => (None, 0),
    };
    let meta = PredictorMeta {
        fingerprint,
        next_seq,
        model_epoch: has_epoch.then_some(epoch),
        last_fit_attempt: has_lfa.then_some(lfa),
        backoff,
        accepted: c.u64()?,
        self_loops: c.u64()?,
        duplicates: c.u64()?,
        stale: c.u64()?,
        successful_refits: c.u64()?,
        failed_refits: c.u64()?,
        degraded_scores: c.u64()?,
        window,
        out_of_window,
    };
    c.finish()?;
    if backoff == 0 {
        return Err(corrupt(SEC_PMETA, "backoff must be at least 1"));
    }
    let model = match r.section(SEC_MODEL) {
        Some(bytes) => Some(
            SsfnmModel::load(bytes)
                .map_err(|e| corrupt(SEC_MODEL, e.to_string()))?,
        ),
        None => None,
    };
    if model.is_some() != meta.model_epoch.is_some() {
        return Err(corrupt(
            SEC_PMETA,
            "model section and model-epoch flag disagree",
        ));
    }
    let last_refit_error = match r.section(SEC_REFIT_ERROR) {
        Some(bytes) => Some(
            String::from_utf8(bytes.to_vec())
                .map_err(|_| corrupt(SEC_REFIT_ERROR, "not valid UTF-8"))?,
        ),
        None => None,
    };
    Ok(PersistedState {
        graph,
        model,
        meta,
        last_refit_error,
    })
}

/// One checkpoint file on disk, parsed from its name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SnapshotEntry {
    /// First WAL sequence not covered (replay starts here).
    pub(crate) seq: u64,
    /// Graph revision at checkpoint time.
    pub(crate) revision: u64,
    pub(crate) path: PathBuf,
}

/// Path of the checkpoint covering WAL sequences below `seq` at graph
/// `revision`. Zero-padded so lexicographic and numeric order agree.
pub(crate) fn snapshot_path(dir: &Path, revision: u64, seq: u64) -> PathBuf {
    dir.join(format!("snapshot-{revision:020}-{seq:020}.ssf1"))
}

/// Lists checkpoint files in `dir`, oldest first (by covered sequence,
/// then revision). Files that merely look similar are ignored.
pub(crate) fn list_snapshots(dir: &Path) -> io::Result<Vec<SnapshotEntry>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name
            .strip_prefix("snapshot-")
            .and_then(|s| s.strip_suffix(".ssf1"))
        else {
            continue;
        };
        let Some((rev, seq)) = stem.split_once('-') else {
            continue;
        };
        if let (Ok(revision), Ok(seq)) =
            (rev.parse::<u64>(), seq.parse::<u64>())
        {
            out.push(SnapshotEntry {
                seq,
                revision,
                path,
            });
        }
    }
    out.sort_by_key(|e| (e.seq, e.revision));
    Ok(out)
}

/// Deletes all but the newest `keep` checkpoints, returning how many
/// were removed. `keep == 0` is treated as 1 — the newest checkpoint
/// is never pruned.
pub(crate) fn prune_snapshots(dir: &Path, keep: usize) -> io::Result<u64> {
    let snapshots = list_snapshots(dir)?;
    let keep = keep.max(1);
    let mut removed = 0;
    if snapshots.len() > keep {
        for entry in &snapshots[..snapshots.len() - keep] {
            std::fs::remove_file(&entry.path)?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("ssf-durability-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_meta() -> PredictorMeta {
        PredictorMeta {
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            next_seq: 42,
            model_epoch: None,
            last_fit_attempt: Some(17),
            backoff: 2,
            accepted: 40,
            self_loops: 1,
            duplicates: 0,
            stale: 1,
            successful_refits: 3,
            failed_refits: 2,
            degraded_scores: 5,
            window: None,
            out_of_window: 0,
        }
    }

    fn sample_graph() -> FrozenGraph {
        let mut g = dyngraph::DynamicNetwork::new();
        g.add_link(0, 1, 3);
        g.add_link(1, 2, 5);
        g.add_link(0, 3, 4);
        FrozenGraph::from_view(&g)
    }

    #[test]
    fn state_round_trips_without_a_model() {
        let graph = sample_graph();
        let meta = sample_meta();
        let mut w = SnapshotWriter::new();
        encode_state(&mut w, &graph, None, &meta, Some("no positives"))
            .unwrap();
        let r = SnapshotReader::from_bytes(&w.to_bytes()).unwrap();
        let state = decode_state(&r).unwrap();
        assert_eq!(state.graph, graph);
        assert_eq!(state.meta, meta);
        assert!(state.model.is_none());
        assert_eq!(state.last_refit_error.as_deref(), Some("no positives"));
    }

    #[test]
    fn window_round_trips_through_its_own_section() {
        let graph = sample_graph();
        let window = Window {
            width: 7,
            horizon: u32::MAX,
        };
        let meta = PredictorMeta {
            window: Some(window),
            out_of_window: 11,
            ..sample_meta()
        };
        let mut w = SnapshotWriter::new();
        encode_state(&mut w, &graph, None, &meta, None).unwrap();
        let r = SnapshotReader::from_bytes(&w.to_bytes()).unwrap();
        assert!(r.section(SEC_WINDOW).is_some());
        let state = decode_state(&r).unwrap();
        assert_eq!(state.meta.window, Some(window));
        assert_eq!(state.meta.out_of_window, 11);
        // Unbounded predictors write no window section at all, so
        // their snapshots are byte-identical to the pre-window format.
        let mut w = SnapshotWriter::new();
        encode_state(&mut w, &graph, None, &sample_meta(), None).unwrap();
        let r = SnapshotReader::from_bytes(&w.to_bytes()).unwrap();
        assert!(r.section(SEC_WINDOW).is_none());
        assert_eq!(decode_state(&r).unwrap().meta.window, None);
    }

    #[test]
    fn model_and_epoch_must_agree() {
        // Epoch flag set but no model section: corrupt, not a guess.
        let graph = sample_graph();
        let meta = PredictorMeta {
            model_epoch: Some(9),
            ..sample_meta()
        };
        let mut w = SnapshotWriter::new();
        encode_state(&mut w, &graph, None, &meta, None).unwrap();
        let r = SnapshotReader::from_bytes(&w.to_bytes()).unwrap();
        let err = decode_state(&r).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("disagree"), "{err}");
    }

    #[test]
    fn pmeta_corruption_is_typed_never_a_panic() {
        let graph = sample_graph();
        let mut w = SnapshotWriter::new();
        encode_state(&mut w, &graph, None, &sample_meta(), None).unwrap();
        let bytes = w.to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x04;
            let outcome =
                SnapshotReader::from_bytes(&bad).and_then(|r| decode_state(&r));
            match outcome {
                Err(PersistError::Corrupt { .. }) => {}
                Err(other) => panic!("byte {i}: unexpected {other}"),
                Ok(state) => {
                    assert_eq!(
                        state.meta,
                        sample_meta(),
                        "byte {i} silently altered the metadata"
                    );
                    assert_eq!(state.graph, sample_graph());
                }
            }
        }
    }

    #[test]
    fn snapshot_listing_sorts_and_ignores_strangers() {
        let dir = temp_dir("list");
        for (rev, seq) in [(30u64, 12u64), (10, 4), (20, 8)] {
            fs::write(snapshot_path(&dir, rev, seq), b"x").unwrap();
        }
        fs::write(dir.join("snapshot-junk.ssf1"), b"x").unwrap();
        fs::write(dir.join("wal-00000000000000000000.log"), b"x").unwrap();
        let entries = list_snapshots(&dir).unwrap();
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [4, 8, 12]);
        assert_eq!(entries[2].revision, 30);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pruning_keeps_the_newest_checkpoints() {
        let dir = temp_dir("prune");
        for (rev, seq) in [(10u64, 4u64), (20, 8), (30, 12), (40, 16)] {
            fs::write(snapshot_path(&dir, rev, seq), b"x").unwrap();
        }
        assert_eq!(prune_snapshots(&dir, 2).unwrap(), 2);
        let left = list_snapshots(&dir).unwrap();
        assert_eq!(left.len(), 2);
        assert_eq!(left[0].seq, 12);
        // keep == 0 never deletes the newest snapshot.
        assert_eq!(prune_snapshots(&dir, 0).unwrap(), 1);
        assert_eq!(list_snapshots(&dir).unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_tracks_the_configuration() {
        let a = OnlinePredictorConfig::default();
        let mut b = OnlinePredictorConfig::default();
        assert_eq!(config_fingerprint(&a), config_fingerprint(&b));
        b.refit_every += 1;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
    }
}
