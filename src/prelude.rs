//! The curated import surface: `use ssf_repro::prelude::*;`.
//!
//! One glob brings in everything a typical application touches — the
//! dynamic network substrate, the SSF extractor, the online predictor
//! with its config builder, the concurrent-serving types
//! ([`ScoringSnapshot`], [`ShardedPredictor`]), the validated dataset
//! specs with their scale tiers ([`DatasetSpec`], [`ScaleTier`]), the
//! error taxonomy and the observability recorder types. Anything not listed here is still
//! reachable through the re-exported workspace crates
//! ([`crate::dyngraph`], [`crate::ssf_core`], …), but downstream code
//! should not need internal module paths for the serving workflow.

pub use datasets::{
    DatasetSpec, DatasetSpecBuilder, PaperDataset, ScaleTier, SpecError,
    Topology,
};
pub use dyngraph::{
    AdvanceReport, DeltaGraph, DynamicNetwork, FrozenGraph, GraphError,
    GraphView, IncidentLinks, Link, NodeId, OverlayView, StorageMode,
    Timestamp, Window, WindowedView,
};
pub use obs::{
    NoopRecorder, ObsHandle, Recorder, Registry, RegistryRecorder, Snapshot,
};
pub use ssf_core::{
    CacheStats, EntryEncoding, ExtractionCache, FrozenCacheView, SsfConfig,
    SsfExtractor, SsfFeature,
};

pub use ssf_persist::FsyncPolicy;

pub use crate::coalesce::{
    BatchScorer, Clock, CoalesceConfig, CoalesceStats, Coalescer, MockClock,
    Rejection, SystemClock, Ticket,
};
pub use crate::durability::{DurabilityPolicy, RecoveryReport};
pub use crate::error::{ConfigError, SsfError};
pub use crate::methods::{Method, MethodOptions};
pub use crate::model::SsfnmModel;
pub use crate::serve::{
    Health, Observed, QuarantineReason, ScoringSnapshot, ShardedPredictor,
    ShardedSnapshot, StreamStats,
};
pub use crate::stream::{
    OnlineLinkPredictor, OnlinePredictorConfig, OnlinePredictorConfigBuilder,
};
