//! Online link prediction over a live link stream.
//!
//! The paper models dynamic networks as a stream of timestamped links
//! (§III): "the links with timestamps emerge as a stream. We create the
//! dynamic network from a blank graph and keep adding links". This module
//! provides the matching runtime: feed links as they arrive, and the
//! predictor periodically refits an [`SsfnmModel`] on the accumulated
//! history so candidate pairs can be scored at any moment.
//!
//! Real streams are hostile: they replay events, carry self-loops and
//! deliver hours-late timestamps. The predictor therefore never panics on
//! an event. Malformed events are *quarantined* — counted in
//! [`StreamStats`](crate::serve::StreamStats), their endpoints registered
//! so the ids stay scoreable — and the healthy remainder drives the
//! model. Failed refits back off exponentially (a stream too sparse to
//! fit at tick `t` is rarely fit at `t + 1`), and a scoring failure on
//! one pair degrades to a common-neighbor fallback for that pair only.
//! [`OnlineLinkPredictor::health`] reports the whole picture.
//!
//! For concurrent serving — many reader threads scoring while this
//! single writer ingests — publish immutable epochs with
//! [`OnlineLinkPredictor::snapshot`] and see [`crate::serve`].

use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dyngraph::{
    AdvanceReport, DeltaGraph, DynamicNetwork, FrozenGraph, GraphError,
    GraphView, NodeId, OverlayView, StorageMode, Timestamp, Window,
    WindowedView,
};
use obs::{labeled, ObsHandle};
use ssf_core::{CacheStats, ExtractionCache};
use ssf_eval::{backtest_splits, BacktestConfig, Split, SplitConfig};
use ssf_persist::{
    replay, ReplayStep, SnapshotReader, SnapshotWriter, WalOp, WalOptions,
    WalWriter,
};

use crate::durability::{
    self, Durability, DurabilityPolicy, PersistedState, PredictorMeta,
    RecoveryReport,
};
use crate::error::{ConfigError, SsfError};
use crate::methods::MethodOptions;
use crate::model::SsfnmModel;
use crate::serve;

/// Configuration of the online predictor.
///
/// Construct through [`OnlinePredictorConfig::builder`] (or start from
/// [`Default::default`]): the struct is `#[non_exhaustive]`, so
/// struct-literal construction outside this crate no longer compiles, and
/// the builder's [`build`](OnlinePredictorConfigBuilder::build) validates
/// the hyperparameters the pipeline cannot recover from at runtime.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct OnlinePredictorConfig {
    /// Hyperparameters shared with the offline experiments.
    pub method: MethodOptions,
    /// Refit whenever the stream has advanced this many ticks since the
    /// last (attempted) fit. After a failed fit the effective interval
    /// doubles per failure, up to `refit_every × max_backoff`.
    pub refit_every: u32,
    /// Cap on the exponential refit backoff multiplier (≥ 1).
    pub max_backoff: u32,
    /// Quarantine events older than `max_lag` ticks behind the newest
    /// observed timestamp (`None` accepts arbitrary reordering).
    pub max_lag: Option<u32>,
    /// Quarantine exact `(u, v, t)` replays. Off by default: the network
    /// is a multigraph and repeated same-tick interactions can be real.
    pub quarantine_duplicates: bool,
    /// Split settings used to carve training sets out of the history.
    pub split: SplitConfig,
    /// Minimum positives a training split must contain.
    pub min_positives: usize,
    /// Earlier-window folds used to augment training (0 = none).
    pub history_folds: u32,
    /// Physical layout the copy-on-write graph mirror compacts into
    /// ([`StorageMode::Auto`] by default: compact once the graph is
    /// large, wide below that). A [`StorageMode::Compact`] request that
    /// no longer fits `u32` indices falls back to wide at the next
    /// compaction instead of failing ingestion.
    pub storage: StorageMode,
    /// Sliding-window width: keep only links stamped within
    /// `horizon − window ..= horizon`, where the horizon follows the
    /// newest accepted timestamp and can be pushed explicitly with
    /// [`OnlineLinkPredictor::advance`]. Events behind the cutoff are
    /// quarantined as
    /// [`OutOfWindow`](serve::QuarantineReason::OutOfWindow). `None`
    /// (the default) keeps the full history.
    pub window: Option<Timestamp>,
}

impl Default for OnlinePredictorConfig {
    fn default() -> Self {
        OnlinePredictorConfig {
            method: MethodOptions::default(),
            refit_every: 5,
            max_backoff: 8,
            max_lag: None,
            quarantine_duplicates: false,
            split: SplitConfig::default(),
            min_positives: 30,
            history_folds: 2,
            storage: StorageMode::Auto,
            window: None,
        }
    }
}

impl OnlinePredictorConfig {
    /// Starts a builder preloaded with the paper defaults.
    pub fn builder() -> OnlinePredictorConfigBuilder {
        OnlinePredictorConfigBuilder {
            config: OnlinePredictorConfig::default(),
        }
    }
}

/// Validating builder for [`OnlinePredictorConfig`] — the supported way
/// to construct a non-default configuration.
///
/// # Example
///
/// ```rust
/// use ssf_repro::prelude::*;
///
/// let config = OnlinePredictorConfig::builder()
///     .refit_every(10)
///     .quarantine_duplicates(true)
///     .max_lag(Some(50))
///     .build()
///     .expect("valid configuration");
/// assert_eq!(config.refit_every, 10);
///
/// // Invalid hyperparameters are rejected with a typed error:
/// let err = OnlinePredictorConfig::builder()
///     .refit_every(0)
///     .build();
/// assert!(matches!(err, Err(SsfError::Config(_))));
/// ```
#[derive(Debug, Clone)]
pub struct OnlinePredictorConfigBuilder {
    config: OnlinePredictorConfig,
}

impl OnlinePredictorConfigBuilder {
    /// Hyperparameters shared with the offline experiments.
    pub fn method(mut self, method: MethodOptions) -> Self {
        self.config.method = method;
        self
    }

    /// Refit cadence in stream ticks (must be ≥ 1).
    pub fn refit_every(mut self, ticks: u32) -> Self {
        self.config.refit_every = ticks;
        self
    }

    /// Cap on the exponential refit backoff multiplier (must be ≥ 1).
    pub fn max_backoff(mut self, cap: u32) -> Self {
        self.config.max_backoff = cap;
        self
    }

    /// Staleness cutoff in ticks behind the stream head (`None` accepts
    /// arbitrary reordering).
    pub fn max_lag(mut self, lag: Option<u32>) -> Self {
        self.config.max_lag = lag;
        self
    }

    /// Whether exact `(u, v, t)` replays are quarantined.
    pub fn quarantine_duplicates(mut self, on: bool) -> Self {
        self.config.quarantine_duplicates = on;
        self
    }

    /// Split settings used to carve training sets out of the history.
    pub fn split(mut self, split: SplitConfig) -> Self {
        self.config.split = split;
        self
    }

    /// Minimum positives a training split must contain.
    pub fn min_positives(mut self, n: usize) -> Self {
        self.config.min_positives = n;
        self
    }

    /// Earlier-window folds used to augment training (0 = none).
    pub fn history_folds(mut self, folds: u32) -> Self {
        self.config.history_folds = folds;
        self
    }

    /// Physical layout the graph mirror compacts into (default
    /// [`StorageMode::Auto`]).
    pub fn storage(mut self, mode: StorageMode) -> Self {
        self.config.storage = mode;
        self
    }

    /// Sliding-window width in ticks (`None`, the default, keeps the
    /// full history). A width of 0 keeps only links stamped exactly at
    /// the horizon.
    pub fn window(mut self, width: Option<Timestamp>) -> Self {
        self.config.window = width;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// [`SsfError::Config`] when `K < 3`, θ is negative or non-finite
    /// (via [`MethodOptions::validate`]), `refit_every == 0` or
    /// `max_backoff == 0`.
    pub fn build(self) -> Result<OnlinePredictorConfig, SsfError> {
        self.config.method.validate()?;
        if self.config.refit_every == 0 {
            return Err(ConfigError::ZeroRefitInterval.into());
        }
        if self.config.max_backoff == 0 {
            return Err(ConfigError::ZeroBackoff.into());
        }
        Ok(self.config)
    }
}

/// A fitted model bound to the graph revision its training history was
/// read at.
///
/// The predictor stores this behind one `Arc` option and replaces it in a
/// single assignment, so the "is fitted" flag, the serving weights and
/// the model epoch flip together — a health or scoring snapshot can never
/// pair the new flag with a half-replaced model (the bug this type
/// fixed).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FittedModel {
    /// The serving model.
    pub(crate) model: SsfnmModel,
    /// Graph revision of the history the fit consumed.
    pub(crate) epoch: u64,
}

/// An online link predictor over a growing dynamic network.
///
/// # Example
///
/// ```rust
/// use ssf_repro::prelude::*;
///
/// let mut p = OnlineLinkPredictor::new(OnlinePredictorConfig::default());
/// p.observe(0, 1, 1);
/// p.observe(1, 2, 2);
/// assert!(!p.observe(2, 2, 3).is_accepted()); // self-loop quarantined
/// assert!(p.score(0, 2).is_none()); // not enough history to fit yet
/// assert_eq!(p.health().quarantined, 1);
/// ```
#[derive(Debug)]
pub struct OnlineLinkPredictor {
    config: OnlinePredictorConfig,
    /// The authoritative graph: a windowed view (unbounded unless
    /// [`OnlinePredictorConfig::window`] is set) whose expiry and
    /// horizon moves bump the same revision counter as inserts.
    network: WindowedView,
    /// Copy-on-write mirror of `network`: a shared frozen CSR base plus
    /// the mutations since the last compaction, updated in lockstep by
    /// `observe`. Snapshots publish this mirror with `Arc` clones —
    /// O(delta), never a graph-sized copy.
    delta: DeltaGraph,
    /// The serving model and its epoch, replaced atomically as one unit.
    pub(crate) fitted: Option<Arc<FittedModel>>,
    last_fit_attempt: Option<Timestamp>,
    backoff: u32,
    last_refit_error: Option<String>,
    stats: serve::StreamStats,
    /// Graph-versioned extraction memo behind [`score_batch`]; it syncs to
    /// the network's revision counter on every use, so `observe` never has
    /// to touch it.
    ///
    /// [`score_batch`]: OnlineLinkPredictor::score_batch
    pub(crate) cache: ExtractionCache,
    /// Telemetry sink; the no-op handle by default.
    obs: ObsHandle,
    /// Durable-state attachment (WAL writer + directory); `None` for
    /// the default in-memory predictor. See
    /// [`with_durability`](OnlineLinkPredictor::with_durability).
    durability: Option<Durability>,
}

/// Clones share everything except durability: a WAL has exactly one
/// writer, so the clone detaches from the directory and continues as a
/// purely in-memory predictor (its scores are unaffected).
impl Clone for OnlineLinkPredictor {
    fn clone(&self) -> Self {
        OnlineLinkPredictor {
            config: self.config.clone(),
            network: self.network.clone(),
            delta: self.delta.clone(),
            fitted: self.fitted.clone(),
            last_fit_attempt: self.last_fit_attempt,
            backoff: self.backoff,
            last_refit_error: self.last_refit_error.clone(),
            stats: self.stats.clone(),
            cache: self.cache.clone(),
            obs: self.obs.clone(),
            durability: None,
        }
    }
}

impl OnlineLinkPredictor {
    /// Creates an empty predictor.
    pub fn new(config: OnlinePredictorConfig) -> Self {
        Self::with_recorder(config, ObsHandle::noop())
    }

    /// Creates an empty predictor emitting telemetry into `obs`: span
    /// timings under `ssf.stream.*`, quarantine/refit/degradation
    /// counters, the refit-backoff gauge, and the extraction-cache
    /// hit/miss gauges folded in from [`CacheStats`] after every batch.
    /// The recorder also flows into the batch extraction cache, so
    /// `ssf.core.*` stage timings appear alongside. Scores are
    /// bit-identical to the unobserved predictor.
    pub fn with_recorder(
        config: OnlinePredictorConfig,
        obs: ObsHandle,
    ) -> Self {
        let network = match config.window {
            Some(width) => WindowedView::with_width(width),
            None => WindowedView::unbounded(),
        };
        OnlineLinkPredictor {
            config,
            network,
            delta: DeltaGraph::new(Arc::new(FrozenGraph::empty())),
            fitted: None,
            last_fit_attempt: None,
            backoff: 1,
            last_refit_error: None,
            stats: serve::StreamStats::default(),
            cache: ExtractionCache::with_recorder(obs.clone()),
            obs,
            durability: None,
        }
    }

    /// The predictor's telemetry handle.
    pub fn recorder(&self) -> &ObsHandle {
        &self.obs
    }

    /// Feeds one stream event; never panics.
    ///
    /// Healthy events enter the network; self-loops, configured
    /// duplicates and too-stale timestamps are quarantined — counted in
    /// [`serve::StreamStats`] with their endpoints registered as
    /// (possibly isolated) nodes, so ids seen only in quarantined events
    /// remain valid scoring targets. Refitting triggers automatically
    /// every `refit_every` ticks, stretched by the current backoff after
    /// failures.
    pub fn observe(
        &mut self,
        u: NodeId,
        v: NodeId,
        t: Timestamp,
    ) -> serve::Observed {
        let _span = self.obs.span("ssf.stream.ingest");
        // Log-before-mutate: the WAL sees every event — including ones
        // about to be quarantined, whose node registration still bumps
        // the revision — so replay reproduces the exact state machine.
        self.log_event(u, v, t);
        if let (Some(max_lag), Some(head)) =
            (self.config.max_lag, self.network.max_timestamp())
        {
            if t.saturating_add(max_lag) < head {
                self.network.ensure_node(u);
                self.network.ensure_node(v);
                self.delta.ensure_node(u);
                self.delta.ensure_node(v);
                self.stats.stale += 1;
                self.note_quarantine("stale");
                self.sync_cache_to_network(&[]);
                return serve::Observed::Quarantined(
                    serve::QuarantineReason::Stale { lag: head - t },
                );
            }
        }
        if u == v {
            self.network.ensure_node(u);
            self.delta.ensure_node(u);
            self.stats.self_loops += 1;
            self.note_quarantine("self_loop");
            self.sync_cache_to_network(&[]);
            return serve::Observed::Quarantined(
                serve::QuarantineReason::SelfLoop,
            );
        }
        if self.config.quarantine_duplicates && self.already_recorded(u, v, t) {
            self.network.ensure_node(u);
            self.network.ensure_node(v);
            self.delta.ensure_node(u);
            self.delta.ensure_node(v);
            self.stats.duplicates += 1;
            self.note_quarantine("duplicate");
            self.sync_cache_to_network(&[]);
            return serve::Observed::Quarantined(
                serve::QuarantineReason::Duplicate,
            );
        }
        let advance = match self.network.try_add_link(u, v, t) {
            Ok(advance) => advance,
            Err(GraphError::OutOfWindow { cutoff, .. }) => {
                // Behind the sliding window's trailing edge. Register
                // the endpoints like every other quarantine so the ids
                // stay scoreable (as isolated-by-expiry nodes).
                self.network.ensure_node(u);
                self.network.ensure_node(v);
                self.delta.ensure_node(u);
                self.delta.ensure_node(v);
                self.stats.out_of_window += 1;
                self.note_quarantine("out_of_window");
                self.sync_cache_to_network(&[]);
                return serve::Observed::Quarantined(
                    serve::QuarantineReason::OutOfWindow { cutoff },
                );
            }
            Err(_) => {
                // try_add_link otherwise only rejects self-loops, handled
                // above; treat a future rejection reason as quarantine
                // rather than panic.
                self.stats.self_loops += 1;
                self.note_quarantine("self_loop");
                return serve::Observed::Quarantined(
                    serve::QuarantineReason::SelfLoop,
                );
            }
        };
        self.mirror_accepted_link(u, v, t, advance.as_ref());
        if self.delta.delta_link_count()
            >= compaction_threshold(self.network.link_count())
        {
            // Amortized O(delta): folding the log into a fresh CSR base
            // costs O(V + E) but only after the delta has grown to a
            // fixed fraction of the graph.
            let span = self.obs.span("ssf.stream.compact");
            let base = match self.delta.rebase_with(self.config.storage) {
                Ok(base) => base,
                // An explicit Compact request that overflowed u32
                // indices: stay available on the wide layout rather
                // than failing ingestion.
                Err(_) => self.delta.rebase(),
            };
            span.finish();
            self.obs.counter("ssf.stream.compactions", 1);
            self.obs.gauge(
                "ssf.graph.storage_mode",
                storage_mode_gauge(base.storage_mode()),
            );
        }
        self.stats.accepted += 1;
        self.obs.counter("ssf.stream.accepted", 1);
        let Some(now) = self.network.max_timestamp() else {
            return serve::Observed::Accepted;
        };
        let interval = self.config.refit_every.saturating_mul(self.backoff);
        let due = match self.last_fit_attempt {
            None => true,
            Some(last) => now.saturating_sub(last) >= interval,
        };
        if due {
            self.last_fit_attempt = Some(now);
            let _ = self.try_refit();
        }
        serve::Observed::Accepted
    }

    /// Pushes the sliding window's horizon forward to `to` without
    /// ingesting a link, expiring every link that falls behind the new
    /// cutoff. Like [`observe`](OnlineLinkPredictor::observe) the move
    /// is logged to the WAL before mutating memory, so replay
    /// reproduces the same expiry sequence bit for bit. On an
    /// unbounded predictor this still bumps the revision (snapshots
    /// and caches see the horizon move) but never expires anything.
    ///
    /// Returns `Ok(None)` when `to` equals the current horizon, and
    /// the [`AdvanceReport`] otherwise.
    ///
    /// # Errors
    ///
    /// [`SsfError::Graph`] with [`GraphError::HorizonRegressed`] when
    /// `to` is behind the current horizon; the predictor is unchanged.
    pub fn advance(
        &mut self,
        to: Timestamp,
    ) -> Result<Option<AdvanceReport>, SsfError> {
        let _span = self.obs.span("ssf.stream.advance");
        self.log_advance(to);
        let Some(report) = self.network.advance(to)? else {
            return Ok(None);
        };
        self.delta.expire_links_below(
            report.cutoff,
            &report.affected,
            report.min_timestamp,
        );
        self.sync_cache_to_network(&report.affected);
        self.obs.counter("ssf.stream.advances", 1);
        self.obs
            .counter("ssf.stream.expired_links", report.expired_links as u64);
        Ok(Some(report))
    }

    /// Applies one accepted link — and the implicit window advance it
    /// may have triggered — to the copy-on-write mirror, keeping its
    /// revision in lockstep with the network's, then re-keys the
    /// extraction cache.
    fn mirror_accepted_link(
        &mut self,
        u: NodeId,
        v: NodeId,
        t: Timestamp,
        advance: Option<&AdvanceReport>,
    ) {
        if let Some(report) = advance {
            self.delta.expire_links_below(
                report.cutoff,
                &report.affected,
                report.min_timestamp,
            );
            self.obs.counter(
                "ssf.stream.expired_links",
                report.expired_links as u64,
            );
        }
        if self.config.window.is_some() {
            // The windowed authority keeps rows in time order (expiry
            // is a prefix drop), so the mirror must insert in time
            // order too for the two to stay bit-identical.
            let _ = self.delta.try_add_link_sorted(u, v, t);
            let mut affected =
                advance.map(|r| r.affected.clone()).unwrap_or_default();
            affected.push(u);
            affected.push(v);
            self.sync_cache_to_network(&affected);
        } else {
            let _ = self.delta.try_add_link(u, v, t);
        }
    }

    /// Re-keys the batch extraction cache to the network's current
    /// `(revision, window)` immediately after a mutation, dropping only
    /// the memos that depend on `affected` nodes. Windowed predictors
    /// only: this keeps invalidation proportional to what an advance
    /// actually expired, where the footprint-blind revision sync on
    /// the next batch would flush the whole memo. Unbounded predictors
    /// keep the legacy flush-on-next-batch behaviour and skip the
    /// bookkeeping on the hot ingest path.
    fn sync_cache_to_network(&mut self, affected: &[NodeId]) {
        if self.config.window.is_none() {
            return;
        }
        let window = self.network.window().map(|w| (w.width, w.horizon));
        self.cache
            .sync_affected(self.network.network(), window, affected);
    }

    /// Forces a refit on the current history.
    ///
    /// On success the serving model and its epoch (the graph revision the
    /// training history was read at) are replaced in a single atomic slot
    /// assignment.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SsfError`] when the accumulated stream
    /// cannot produce a usable training split or the fit itself fails;
    /// the previous model, if any, stays active and the automatic refit
    /// backoff widens.
    pub fn try_refit(&mut self) -> Result<(), SsfError> {
        let span = self.obs.span("ssf.stream.refit");
        let epoch = self.network.revision();
        let outcome = self.fit_current();
        span.finish();
        let outcome = match outcome {
            Ok(model) => {
                // One assignment flips flag, weights and epoch together.
                self.fitted = Some(Arc::new(FittedModel { model, epoch }));
                self.stats.successful_refits += 1;
                self.backoff = 1;
                self.last_refit_error = None;
                self.obs.counter("ssf.stream.refit.success", 1);
                Ok(())
            }
            Err(e) => {
                self.stats.failed_refits += 1;
                self.backoff = self
                    .backoff
                    .saturating_mul(2)
                    .min(self.config.max_backoff.max(1));
                self.last_refit_error = Some(e.to_string());
                self.obs.counter("ssf.stream.refit.failed", 1);
                Err(e)
            }
        };
        self.obs
            .gauge("ssf.stream.backoff", f64::from(self.backoff));
        outcome
    }

    fn fit_current(&self) -> Result<SsfnmModel, SsfError> {
        let split = Split::with_min_positives(
            self.network.network(),
            &self.config.split,
            self.config.min_positives,
        )?;
        let extra = if self.config.history_folds > 0 {
            backtest_splits(
                &split.history,
                &BacktestConfig {
                    split: self.config.split,
                    folds: self.config.history_folds,
                    stride: 1,
                    min_positives: self.config.min_positives / 2,
                },
            )
            .unwrap_or_default()
        } else {
            Vec::new()
        };
        SsfnmModel::try_fit_observed(
            &split,
            &extra,
            &self.config.method,
            &self.obs,
        )
    }

    /// Per-reason quarantine counters (plus the all-reasons total) under
    /// the labeled family `ssf.stream.quarantined{reason=…}`. The label
    /// rendering allocates, so the whole emit is gated on an enabled
    /// recorder.
    fn note_quarantine(&self, reason: &'static str) {
        if self.obs.enabled() {
            self.obs.counter("ssf.stream.quarantined", 1);
            self.obs.counter(
                &labeled("ssf.stream.quarantined", &[("reason", reason)]),
                1,
            );
        }
    }

    /// Folds the extraction cache's [`CacheStats`] into gauges after a
    /// batch, including the derived overall hit rate.
    fn publish_cache_gauges(&self) {
        if !self.obs.enabled() {
            return;
        }
        let s = self.cache.stats();
        self.obs
            .gauge("ssf.stream.cache.ball_hits", s.ball_hits as f64);
        self.obs
            .gauge("ssf.stream.cache.ball_misses", s.ball_misses as f64);
        self.obs
            .gauge("ssf.stream.cache.pair_hits", s.pair_hits as f64);
        self.obs
            .gauge("ssf.stream.cache.pair_misses", s.pair_misses as f64);
        self.obs
            .gauge("ssf.stream.cache.invalidations", s.invalidations as f64);
        let total = s.total_lookups();
        self.obs.gauge("ssf.stream.cache.lookups", total as f64);
        if total > 0 {
            let hits = s.ball_hits + s.pair_hits;
            self.obs
                .gauge("ssf.stream.cache.hit_rate", hits as f64 / total as f64);
        }
    }

    /// Scores a candidate pair with the latest fitted model, or `None` if
    /// no model could be fitted yet, `u == v`, or an endpoint lies outside
    /// the network's id space. The id space covers every node ever seen —
    /// including endpoints of quarantined events, which score as isolated
    /// nodes rather than being rejected.
    ///
    /// If the model fails on this one pair (a panic in extraction on a
    /// pathological subgraph), the score degrades to a common-neighbor
    /// fallback for this pair only and
    /// [`serve::StreamStats::degraded_scores`] is incremented.
    pub fn score(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let _span = self.obs.span("ssf.stream.score");
        let n = self.network.node_count() as NodeId;
        if u == v || u >= n || v >= n {
            return None;
        }
        let present = self.network.max_timestamp()?.saturating_add(1);
        let fitted = self.fitted.as_deref()?;
        let attempt = panic::catch_unwind(AssertUnwindSafe(|| {
            fitted.model.try_score(&self.network, u, v, present)
        }));
        match attempt {
            Ok(Ok(p)) => Some(p),
            Ok(Err(_)) | Err(_) => {
                self.stats.degraded_scores.fetch_add(1, Ordering::Relaxed);
                self.obs.counter("ssf.stream.degraded_scores", 1);
                Some(self.common_neighbor_fallback(u, v))
            }
        }
    }

    /// Scores many candidate pairs at once, amortizing subgraph
    /// extraction through a graph-versioned cache. Each slot carries the
    /// same value [`score`] would return for that pair — bit-identical,
    /// including the `None` cases and the common-neighbor degradation —
    /// but repeated pairs and shared endpoints across the batch (and
    /// across batches, while the network is unchanged) reuse memoized
    /// h-hop frontiers and structure-subgraph results instead of
    /// recomputing them.
    ///
    /// Any accepted observation bumps the network's revision counter,
    /// which invalidates the memo on the next batch; interleaving
    /// `observe` and `score_batch` is therefore always safe.
    ///
    /// [`score`]: OnlineLinkPredictor::score
    pub fn score_batch(
        &mut self,
        pairs: &[(NodeId, NodeId)],
    ) -> Vec<Option<f64>> {
        let _span = self.obs.span("ssf.stream.score_batch");
        self.obs.counter("ssf.stream.scored", pairs.len() as u64);
        let n = self.network.node_count() as NodeId;
        let present = self.network.max_timestamp().map(|t| t.saturating_add(1));
        let mut out = Vec::with_capacity(pairs.len());
        for &(u, v) in pairs {
            if u == v || u >= n || v >= n {
                out.push(None);
                continue;
            }
            let (Some(present), Some(fitted)) =
                (present, self.fitted.as_deref())
            else {
                out.push(None);
                continue;
            };
            let network = &self.network;
            let cache = &mut self.cache;
            let attempt = panic::catch_unwind(AssertUnwindSafe(|| {
                fitted.model.try_score_cached(network, u, v, present, cache)
            }));
            out.push(match attempt {
                Ok(Ok(p)) => Some(p),
                Ok(Err(_)) | Err(_) => {
                    self.stats.degraded_scores.fetch_add(1, Ordering::Relaxed);
                    self.obs.counter("ssf.stream.degraded_scores", 1);
                    Some(self.common_neighbor_fallback(u, v))
                }
            });
        }
        self.publish_cache_gauges();
        out
    }

    /// Publishes the current epoch as an immutable, `Arc`-shared
    /// [`serve::ScoringSnapshot`]: the network, the serving model and a
    /// frozen view of the warm extraction cache, captured together. The
    /// snapshot scores from any thread through `&self` while this writer
    /// keeps ingesting; its results are bit-identical to this predictor's
    /// serial paths at publish time.
    ///
    /// Publish cost is a handful of `Arc` clones over the copy-on-write
    /// graph mirror — O(delta links since the last compaction), never a
    /// graph-sized copy — recorded under the `ssf.serve.snapshot_publish`
    /// span, with the `ssf.serve.epoch_lag` gauge tracking how many graph
    /// revisions the serving model trails behind the published epoch.
    /// Publishing twice with no intervening compaction reuses the same
    /// frozen base `Arc` (pointer-equal across snapshots).
    pub fn snapshot(&self) -> serve::ScoringSnapshot {
        let span = self.obs.span("ssf.serve.snapshot_publish");
        let snap = serve::ScoringSnapshot::publish(self);
        span.finish();
        self.obs.counter("ssf.serve.snapshots", 1);
        let lag = match snap.model_epoch() {
            Some(epoch) => snap.epoch().saturating_sub(epoch),
            None => snap.epoch(),
        };
        self.obs.gauge("ssf.serve.epoch_lag", lag as f64);
        self.obs.gauge(
            "ssf.graph.storage_mode",
            storage_mode_gauge(snap.storage_mode()),
        );
        snap
    }

    /// Drops every memoized entry from the batch-scoring extraction
    /// cache (stats counters survive). Scores are unaffected — the next
    /// `score_batch` simply starts cold. Exposed for memory pressure
    /// and for repeatable cold-path benchmark measurements.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Hit/miss tallies from the batch-scoring extraction cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// `true` once a model has been fitted.
    pub fn is_fitted(&self) -> bool {
        self.fitted.is_some()
    }

    /// Graph revision the serving model was fitted at; `None` before the
    /// first successful refit. Read from the same atomic slot as
    /// [`is_fitted`](OnlineLinkPredictor::is_fitted), so the two never
    /// disagree.
    pub fn model_epoch(&self) -> Option<u64> {
        self.fitted.as_ref().map(|m| m.epoch)
    }

    /// The accumulated network (the in-window portion, when a sliding
    /// window is configured).
    pub fn network(&self) -> &DynamicNetwork {
        self.network.network()
    }

    /// The sliding window currently in force, `None` when the
    /// predictor keeps the full history.
    pub fn window(&self) -> Option<Window> {
        self.network.window()
    }

    /// The stream horizon: the newest timestamp the window has been
    /// advanced (or grown by accepted links) to. Tracks the maximum
    /// accepted timestamp on unbounded predictors too.
    pub fn horizon(&self) -> Timestamp {
        self.network.horizon()
    }

    /// The copy-on-write graph view [`snapshot`] publishes: `Arc` clones
    /// of the shared frozen base plus the delta rows, O(1) in graph size.
    /// Falls back to a fresh freeze of the network if the mirror ever
    /// diverged (defensive — the two are updated in lockstep).
    ///
    /// [`snapshot`]: OnlineLinkPredictor::snapshot
    pub(crate) fn published_graph(&self) -> OverlayView {
        if self.delta.revision() == self.network.revision() {
            self.delta.publish()
        } else {
            debug_assert!(
                false,
                "delta mirror diverged from the network: {} != {}",
                self.delta.revision(),
                self.network.revision()
            );
            DeltaGraph::new(Arc::new(FrozenGraph::from_view(&self.network)))
                .publish()
        }
    }

    /// Links accumulated in the copy-on-write mirror since its last
    /// compaction — the "delta" a snapshot publish is proportional to.
    pub fn delta_link_count(&self) -> usize {
        self.delta.delta_link_count()
    }

    /// The running stream-hygiene tallies.
    pub fn stats(&self) -> &serve::StreamStats {
        &self.stats
    }

    /// A point-in-time health snapshot.
    pub fn health(&self) -> serve::Health {
        let fitted = self.fitted.as_ref();
        serve::Health {
            fitted: fitted.is_some(),
            model_epoch: fitted.map(|m| m.epoch),
            graph_revision: self.network.revision(),
            accepted: self.stats.accepted,
            quarantined: self.stats.quarantined(),
            degraded_scores: self.stats.degraded_scores(),
            successful_refits: self.stats.successful_refits,
            failed_refits: self.stats.failed_refits,
            current_backoff: self.backoff,
            last_refit_error: self.last_refit_error.clone(),
            metrics: self.obs.snapshot(),
        }
    }

    /// Appends one event to the WAL when durable. An append failure
    /// must not drop the event or panic the ingest path: the event
    /// still enters memory, the degradation is recorded in
    /// [`last_wal_error`](OnlineLinkPredictor::last_wal_error) and the
    /// `ssf.persist.wal_append_failed` counter. The error is sticky —
    /// a later successful append does not clear it, because the failed
    /// event is still absent from the durable history; only a
    /// successful [`checkpoint`](OnlineLinkPredictor::checkpoint)
    /// (which persists the full in-memory state, failed appends
    /// included) resets it.
    fn log_event(&mut self, u: NodeId, v: NodeId, t: Timestamp) {
        let Some(d) = self.durability.as_mut() else {
            return;
        };
        match d.wal.append(u, v, t) {
            Ok(_) => {
                self.obs.counter("ssf.persist.wal_appends", 1);
            }
            Err(e) => {
                d.last_wal_error = Some(e.to_string());
                self.obs.counter("ssf.persist.wal_append_failed", 1);
            }
        }
    }

    /// Logs one explicit window advance to the WAL when durable, with
    /// the same sticky-error degradation as
    /// [`log_event`](OnlineLinkPredictor::log_event).
    fn log_advance(&mut self, to: Timestamp) {
        let Some(d) = self.durability.as_mut() else {
            return;
        };
        match d.wal.append_advance(to) {
            Ok(_) => {
                self.obs.counter("ssf.persist.wal_appends", 1);
            }
            Err(e) => {
                d.last_wal_error = Some(e.to_string());
                self.obs.counter("ssf.persist.wal_append_failed", 1);
            }
        }
    }

    /// Whether the exact `(u, v, t)` event is already in the network.
    fn already_recorded(&self, u: NodeId, v: NodeId, t: Timestamp) -> bool {
        let g = self.network.network();
        (u as usize) < g.node_count() && g.incident_links(u).contains(&(v, t))
    }

    /// Degraded scorer shared with the snapshot path (see
    /// [`serve::common_neighbor_fallback`]).
    fn common_neighbor_fallback(&self, u: NodeId, v: NodeId) -> f64 {
        serve::common_neighbor_fallback(&self.network, u, v)
    }
}

/// Durability: write-ahead logging, checkpoints and crash recovery.
///
/// A durable predictor logs every [`observe`] call to a write-ahead
/// log *before* mutating memory, and [`checkpoint`] persists the full
/// state (graph CSR, serving model, refit clock, stream statistics) as
/// one atomic `SSF1` snapshot, after which the covered WAL prefix is
/// reclaimed. [`open`] restores the newest valid snapshot and replays
/// the WAL tail through the normal `observe` path — the recovered
/// predictor's scores are bit-identical to an uninterrupted run over
/// the same logged events.
///
/// [`observe`]: OnlineLinkPredictor::observe
/// [`checkpoint`]: OnlineLinkPredictor::checkpoint
/// [`open`]: OnlineLinkPredictor::open
impl OnlineLinkPredictor {
    /// Opens (or creates) a durable predictor in `dir` with the default
    /// [`DurabilityPolicy`] and no telemetry, discarding the recovery
    /// report. Use [`open`](OnlineLinkPredictor::open) to inspect what
    /// recovery found.
    ///
    /// # Errors
    ///
    /// Same conditions as [`open`](OnlineLinkPredictor::open).
    pub fn with_durability(
        config: OnlinePredictorConfig,
        dir: &Path,
        policy: DurabilityPolicy,
    ) -> Result<Self, SsfError> {
        Ok(Self::open_with(config, dir, policy, ObsHandle::noop())?.0)
    }

    /// Recovers (or cold-starts) a durable predictor from `dir` with
    /// the default policy and no telemetry.
    ///
    /// On an empty directory this is a fresh durable predictor. On a
    /// directory with prior state it loads the newest valid snapshot,
    /// replays the WAL tail through the normal ingest path (repairing
    /// torn tails in place), and resumes logging at the recovered
    /// sequence. Recovery is lossy-by-default: corruption truncates to
    /// the last valid prefix and the [`RecoveryReport`] says exactly
    /// what was dropped — callers needing all-or-nothing semantics
    /// check [`RecoveryReport::is_lossy`].
    ///
    /// # Errors
    ///
    /// [`SsfError::Io`] on filesystem failure, [`SsfError::Corrupt`]
    /// when the newest readable snapshot was written under a different
    /// configuration (restoring it would silently change refit cadence
    /// and hyperparameters mid-history).
    pub fn open(
        config: OnlinePredictorConfig,
        dir: &Path,
    ) -> Result<(Self, RecoveryReport), SsfError> {
        Self::open_with(config, dir, DurabilityPolicy::default(), {
            ObsHandle::noop()
        })
    }

    /// [`open`](OnlineLinkPredictor::open) with an explicit policy and
    /// telemetry: recovery runs under an `ssf.persist.open` span and
    /// reports `ssf.persist.recovered_records`,
    /// `ssf.persist.dropped_bytes` and
    /// `ssf.persist.corrupt_snapshots` counters; the recovered
    /// predictor then logs `ssf.persist.wal_appends` per event.
    ///
    /// # Errors
    ///
    /// Same conditions as [`open`](OnlineLinkPredictor::open).
    pub fn open_with(
        config: OnlinePredictorConfig,
        dir: &Path,
        policy: DurabilityPolicy,
        obs: ObsHandle,
    ) -> Result<(Self, RecoveryReport), SsfError> {
        std::fs::create_dir_all(dir)?;
        let span = obs.span("ssf.persist.open");
        let fingerprint = durability::config_fingerprint(&config);
        let mut predictor = Self::with_recorder(config, obs);
        let mut report = RecoveryReport::default();
        let mut from_seq = 0u64;
        if let Some(state) = load_newest_snapshot(
            dir,
            fingerprint,
            None,
            &mut report,
            predictor.obs.clone(),
        )? {
            report.snapshot_revision = Some(state.graph.revision());
            from_seq = state.meta.next_seq;
            predictor.restore_state(state)?;
        }
        let wal_report = {
            let p = &mut predictor;
            replay(dir, from_seq, true, |rec| {
                match rec.op {
                    WalOp::Event { u, v, t } => {
                        p.observe(u, v, t);
                    }
                    // Replays the logged horizon move; a regression
                    // that was rejected (but still logged ahead of the
                    // mutation) at ingest time is rejected again here,
                    // reproducing the same state either way.
                    WalOp::Advance { horizon } => {
                        let _ = p.advance(horizon);
                    }
                }
                Ok(ReplayStep::Continue)
            })?
        };
        report.records_replayed = wal_report.records_replayed;
        report.bytes_dropped = wal_report.bytes_dropped;
        report.tail_truncated = wal_report.tail_truncated;
        report.segments_removed = wal_report.segments_removed;
        let next_seq = from_seq + wal_report.records_replayed;
        let mut wal = WalWriter::create(dir, next_seq, wal_options(policy))?;
        // A lossy recovery can leave the repaired WAL prefix ending
        // below the snapshot's coverage (`from_seq`) — e.g. a crash
        // between the checkpoint rename and its WAL truncation under a
        // lazy fsync policy. The fresh segment at `next_seq` would then
        // look like a sequence gap to the *next* open, whose repair
        // would delete it along with every record appended after this
        // recovery. Those stale segments are fully covered by the
        // snapshot, so reclaim them now; continuity then starts at the
        // snapshot's coverage point.
        report.segments_removed += wal.truncate_below(from_seq)?;
        predictor.durability = Some(Durability {
            dir: dir.to_path_buf(),
            policy,
            wal,
            last_wal_error: None,
        });
        span.finish();
        predictor
            .obs
            .counter("ssf.persist.recovered_records", report.records_replayed);
        if report.tail_truncated {
            predictor
                .obs
                .counter("ssf.persist.dropped_bytes", report.bytes_dropped);
        }
        Ok((predictor, report))
    }

    /// Reconstructs the predictor as it first stood at (or immediately
    /// past) graph revision `revision`: loads the newest snapshot not
    /// beyond the target and replays WAL records until the revision
    /// counter reaches it. One `observe` can advance the revision by
    /// more than one (node growth plus the link), so the recovered
    /// state is the first logged state with `revision() >= revision`.
    ///
    /// The returned predictor is **not durable**: appending new events
    /// after rewinding history would fork the log, so time-travel
    /// reads are in-memory only. The on-disk state is not modified
    /// (no torn-tail repair either).
    ///
    /// # Errors
    ///
    /// Everything [`open`](OnlineLinkPredictor::open) can return, plus
    /// [`SsfError::Corrupt`] when `revision` lies beyond the durable
    /// history (more WAL would be needed than survives on disk).
    pub fn open_to_revision(
        config: OnlinePredictorConfig,
        dir: &Path,
        revision: u64,
    ) -> Result<(Self, RecoveryReport), SsfError> {
        let fingerprint = durability::config_fingerprint(&config);
        let mut predictor = Self::with_recorder(config, ObsHandle::noop());
        let mut report = RecoveryReport::default();
        let mut from_seq = 0u64;
        if let Some(state) = load_newest_snapshot(
            dir,
            fingerprint,
            Some(revision),
            &mut report,
            predictor.obs.clone(),
        )? {
            report.snapshot_revision = Some(state.graph.revision());
            from_seq = state.meta.next_seq;
            predictor.restore_state(state)?;
        }
        let wal_report = {
            let p = &mut predictor;
            replay(dir, from_seq, false, |rec| {
                if p.network.revision() >= revision {
                    return Ok(ReplayStep::Stop);
                }
                match rec.op {
                    WalOp::Event { u, v, t } => {
                        p.observe(u, v, t);
                    }
                    WalOp::Advance { horizon } => {
                        let _ = p.advance(horizon);
                    }
                }
                Ok(ReplayStep::Continue)
            })?
        };
        report.records_replayed = wal_report.records_replayed;
        report.bytes_dropped = wal_report.bytes_dropped;
        report.tail_truncated = wal_report.tail_truncated;
        if predictor.network.revision() < revision {
            return Err(SsfError::Corrupt {
                section: "recovery".to_string(),
                detail: format!(
                    "revision {revision} is beyond the durable history \
                     (replay reached revision {})",
                    predictor.network.revision()
                ),
            });
        }
        Ok((predictor, report))
    }

    /// Persists the complete current state as one atomic snapshot file
    /// and reclaims the WAL prefix it covers, returning the snapshot
    /// path. After a checkpoint, recovery is load-and-replay-nothing
    /// until the next observe. Old checkpoints beyond
    /// [`DurabilityPolicy::keep_snapshots`] are pruned.
    ///
    /// # Errors
    ///
    /// [`SsfError::Io`] if the predictor has no durability attachment
    /// or a filesystem step fails. A failed checkpoint never corrupts
    /// the previous one — the snapshot lands under a temp name and is
    /// renamed only once fully synced.
    pub fn checkpoint(&mut self) -> Result<PathBuf, SsfError> {
        if self.durability.is_none() {
            return Err(SsfError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "checkpoint requires a durable predictor (open or \
                 with_durability)",
            )));
        }
        let span = self.obs.span("ssf.persist.checkpoint");
        // Fold the copy-on-write delta so the shared frozen base *is*
        // the full graph (skipped when already pristine).
        let base = if self.delta.base().revision() == self.network.revision() {
            Arc::clone(self.delta.base())
        } else {
            self.delta.rebase()
        };
        let Some(d) = self.durability.as_mut() else {
            // Checked above; durability is never detached in between.
            return Err(SsfError::Io(std::io::Error::other(
                "durability detached mid-checkpoint",
            )));
        };
        let seq = d.wal.next_seq();
        let revision = base.revision();
        let meta = PredictorMeta {
            fingerprint: durability::config_fingerprint(&self.config),
            next_seq: seq,
            model_epoch: self.fitted.as_ref().map(|m| m.epoch),
            last_fit_attempt: self.last_fit_attempt,
            backoff: self.backoff,
            accepted: self.stats.accepted,
            self_loops: self.stats.self_loops,
            duplicates: self.stats.duplicates,
            stale: self.stats.stale,
            successful_refits: self.stats.successful_refits,
            failed_refits: self.stats.failed_refits,
            degraded_scores: self.stats.degraded_scores(),
            window: self.network.window(),
            out_of_window: self.stats.out_of_window,
        };
        let mut w = SnapshotWriter::new();
        durability::encode_state(
            &mut w,
            &base,
            self.fitted.as_deref().map(|f| &f.model),
            &meta,
            self.last_refit_error.as_deref(),
        )?;
        let path = durability::snapshot_path(&d.dir, revision, seq);
        w.write_atomic(&path)?;
        d.wal.truncate_below(seq)?;
        // The snapshot covers the complete in-memory state, including
        // any events a failed append kept out of the WAL — durability
        // is whole again, so the sticky degradation marker can reset.
        d.last_wal_error = None;
        durability::prune_snapshots(&d.dir, d.policy.keep_snapshots)?;
        span.finish();
        self.obs.counter("ssf.persist.checkpoints", 1);
        Ok(path)
    }

    /// `true` when every observe is written ahead to a WAL.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The durability directory, when attached.
    pub fn durability_dir(&self) -> Option<&Path> {
        self.durability.as_ref().map(|d| d.dir.as_path())
    }

    /// Rendered error of the most recent failed WAL append. Sticky: a
    /// later successful append does *not* clear it — the failed event
    /// is still missing from the durable history, so replay would not
    /// reproduce the in-memory state. Only a successful
    /// [`checkpoint`](OnlineLinkPredictor::checkpoint), which persists
    /// the full in-memory state, resets it. A pending error means some
    /// events are in memory but not on disk.
    pub fn last_wal_error(&self) -> Option<&str> {
        self.durability
            .as_ref()
            .and_then(|d| d.last_wal_error.as_deref())
    }

    /// Forces all logged events to stable storage regardless of the
    /// [`FsyncPolicy`](ssf_persist::FsyncPolicy); a no-op when not
    /// durable.
    ///
    /// # Errors
    ///
    /// [`SsfError::Io`] if the fsync fails.
    pub fn sync_wal(&mut self) -> Result<(), SsfError> {
        if let Some(d) = self.durability.as_mut() {
            d.wal.sync()?;
        }
        Ok(())
    }

    /// Installs a decoded snapshot: graph (both the mutable network
    /// and its frozen copy-on-write mirror, revision-aligned), model
    /// slot, window horizon, refit clock and stream statistics.
    ///
    /// # Errors
    ///
    /// [`SsfError::Graph`] when the snapshot's graph does not fit the
    /// configured window (a link behind the persisted horizon's
    /// cutoff) — only reachable through on-disk corruption that the
    /// configuration fingerprint cannot catch.
    fn restore_state(&mut self, state: PersistedState) -> Result<(), SsfError> {
        let PersistedState {
            graph,
            model,
            meta,
            last_refit_error,
        } = state;
        let frozen = Arc::new(graph);
        let inner = DynamicNetwork::from_view(frozen.as_ref());
        let horizon = meta.window.map_or(0, |w| w.horizon);
        self.network =
            WindowedView::from_network(inner, self.config.window, horizon)?;
        self.delta = DeltaGraph::new(frozen);
        self.fitted = match (model, meta.model_epoch) {
            (Some(model), Some(epoch)) => {
                Some(Arc::new(FittedModel { model, epoch }))
            }
            _ => None,
        };
        self.last_fit_attempt = meta.last_fit_attempt;
        self.backoff = meta.backoff;
        self.last_refit_error = last_refit_error;
        self.stats = serve::StreamStats {
            accepted: meta.accepted,
            self_loops: meta.self_loops,
            duplicates: meta.duplicates,
            stale: meta.stale,
            out_of_window: meta.out_of_window,
            successful_refits: meta.successful_refits,
            failed_refits: meta.failed_refits,
            degraded_scores: AtomicU64::new(meta.degraded_scores),
        };
        Ok(())
    }
}

/// Picks the newest usable snapshot in `dir`: readable, internally
/// consistent, named truthfully, and (when `max_revision` is set) not
/// past the rewind target. Unusable snapshots are recorded in the
/// report and skipped — except a configuration-fingerprint mismatch,
/// which is a hard error rather than something to silently fall
/// through.
fn load_newest_snapshot(
    dir: &Path,
    fingerprint: u64,
    max_revision: Option<u64>,
    report: &mut RecoveryReport,
    obs: ObsHandle,
) -> Result<Option<PersistedState>, SsfError> {
    let mut snapshots = durability::list_snapshots(dir)?;
    snapshots.reverse(); // newest first
    for entry in snapshots {
        if max_revision.is_some_and(|max| entry.revision > max) {
            continue;
        }
        let state = match SnapshotReader::open(&entry.path)
            .and_then(|r| durability::decode_state(&r))
        {
            Ok(state) if state.meta.next_seq == entry.seq => state,
            Ok(_) | Err(_) => {
                obs.counter("ssf.persist.corrupt_snapshots", 1);
                report.corrupt_snapshots.push(entry.path);
                continue;
            }
        };
        if state.meta.fingerprint != fingerprint {
            return Err(SsfError::Corrupt {
                section: "pmeta".to_string(),
                detail: format!(
                    "snapshot {} was written under a different \
                     configuration (fingerprint {:016x}, this \
                     configuration is {:016x})",
                    entry.path.display(),
                    state.meta.fingerprint,
                    fingerprint
                ),
            });
        }
        return Ok(Some(state));
    }
    Ok(None)
}

/// The WAL writer options a [`DurabilityPolicy`] translates to.
fn wal_options(policy: DurabilityPolicy) -> WalOptions {
    WalOptions {
        fsync: policy.fsync,
        segment_bytes: policy.segment_bytes,
    }
}

/// Gauge encoding of a resolved storage mode: 0 = wide, 1 = compact.
/// (`FrozenGraph::storage_mode` never reports `Auto`.)
pub(crate) fn storage_mode_gauge(mode: StorageMode) -> f64 {
    match mode {
        StorageMode::Compact => 1.0,
        _ => 0.0,
    }
}

/// Delta size that triggers folding the copy-on-write log into a fresh
/// frozen base: an eighth of the graph, floored at 64 links so tiny
/// graphs don't compact on every observe.
fn compaction_threshold(link_count: usize) -> usize {
    (link_count / 8).max(64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::{Observed, QuarantineReason};
    use datasets::DatasetSpec;

    fn quick_config() -> OnlinePredictorConfig {
        OnlinePredictorConfig {
            method: MethodOptions {
                nm_epochs: 15,
                ..MethodOptions::default()
            },
            refit_every: 5,
            min_positives: 10,
            history_folds: 1,
            ..OnlinePredictorConfig::default()
        }
    }

    #[test]
    fn builder_round_trips_every_field() {
        let split = SplitConfig::default();
        let built = OnlinePredictorConfig::builder()
            .method(MethodOptions {
                nm_epochs: 15,
                ..MethodOptions::default()
            })
            .refit_every(5)
            .max_backoff(8)
            .max_lag(Some(7))
            .quarantine_duplicates(true)
            .split(split)
            .min_positives(10)
            .history_folds(1)
            .window(Some(9))
            .build()
            .expect("valid configuration");
        let literal = OnlinePredictorConfig {
            max_lag: Some(7),
            quarantine_duplicates: true,
            window: Some(9),
            ..quick_config()
        };
        assert_eq!(built, literal);
    }

    #[test]
    fn builder_rejects_invalid_hyperparameters() {
        let err = OnlinePredictorConfig::builder()
            .method(MethodOptions {
                k: 0,
                ..MethodOptions::default()
            })
            .build();
        assert!(matches!(
            err,
            Err(SsfError::Config(ConfigError::KTooSmall { k: 0 }))
        ));
        let err = OnlinePredictorConfig::builder()
            .method(MethodOptions {
                theta: -0.25,
                ..MethodOptions::default()
            })
            .build();
        assert!(matches!(
            err,
            Err(SsfError::Config(ConfigError::InvalidTheta { .. }))
        ));
        let err = OnlinePredictorConfig::builder().refit_every(0).build();
        assert!(matches!(
            err,
            Err(SsfError::Config(ConfigError::ZeroRefitInterval))
        ));
        let err = OnlinePredictorConfig::builder().max_backoff(0).build();
        assert!(matches!(
            err,
            Err(SsfError::Config(ConfigError::ZeroBackoff))
        ));
    }

    #[test]
    fn storage_config_defaults_to_auto_and_round_trips() {
        assert_eq!(OnlinePredictorConfig::default().storage, StorageMode::Auto);
        let built = OnlinePredictorConfig::builder()
            .storage(StorageMode::Compact)
            .build()
            .expect("storage mode alone is always a valid config");
        assert_eq!(built.storage, StorageMode::Compact);
    }

    /// An explicit `Compact` storage config must surface in the
    /// published snapshot once a compaction has folded the delta into a
    /// frozen base; the default `Auto` policy keeps small graphs wide.
    #[test]
    fn explicit_compact_storage_reaches_the_snapshot() {
        let g = DatasetSpec::coauthor().scaled(0.15).generate(9);
        let mut links: Vec<_> = g.links().collect();
        links.sort_by_key(|l| l.t);

        let compact_config = OnlinePredictorConfig {
            storage: StorageMode::Compact,
            ..quick_config()
        };
        let mut p = OnlineLinkPredictor::new(compact_config);
        let mut q = OnlineLinkPredictor::new(quick_config());
        for l in links {
            p.observe(l.u, l.v, l.t);
            q.observe(l.u, l.v, l.t);
        }
        assert_eq!(p.snapshot().storage_mode(), StorageMode::Compact);
        // Well below the Auto thresholds: the default stays wide.
        assert_eq!(q.snapshot().storage_mode(), StorageMode::Wide);
        // Scores agree bit-for-bit across layouts.
        for pair in [(0, 1), (2, 5), (1, 4)] {
            assert_eq!(p.score(pair.0, pair.1), q.score(pair.0, pair.1));
        }
    }

    #[test]
    fn no_model_until_enough_history() {
        let mut p = OnlineLinkPredictor::new(quick_config());
        p.observe(0, 1, 1);
        p.observe(1, 2, 1);
        assert!(!p.is_fitted());
        assert!(p.score(0, 2).is_none());
    }

    #[test]
    fn fits_once_stream_is_rich_enough() {
        let spec = DatasetSpec::coauthor().scaled(0.15);
        let g = spec.generate(9);
        let mut links: Vec<_> = g.links().collect();
        links.sort_by_key(|l| l.t);
        let mut p = OnlineLinkPredictor::new(quick_config());
        for l in links {
            p.observe(l.u, l.v, l.t);
        }
        assert!(p.is_fitted(), "stream should eventually support a fit");
        let s = p.score(0, 1);
        assert!(s.is_some());
        assert!((0.0..=1.0).contains(&s.unwrap()));
        let h = p.health();
        assert!(h.fitted);
        assert!(h.successful_refits >= 1);
        assert_eq!(h.quarantined, 0);
        assert_eq!(h.current_backoff, 1, "success resets the backoff");
    }

    #[test]
    fn unknown_nodes_score_none() {
        let spec = DatasetSpec::coauthor().scaled(0.15);
        let g = spec.generate(9);
        let mut p = OnlineLinkPredictor::new(quick_config());
        for l in g.links() {
            p.observe(l.u, l.v, l.t);
        }
        let n = p.network().node_count() as NodeId;
        assert!(p.score(n + 5, 0).is_none());
        assert!(p.score(2, 2).is_none());
    }

    #[test]
    fn refit_error_keeps_previous_model() {
        let mut p = OnlineLinkPredictor::new(quick_config());
        p.observe(0, 1, 1);
        assert!(p.try_refit().is_err());
        assert!(!p.is_fitted());
        let h = p.health();
        assert!(h.failed_refits >= 1);
        assert!(h.last_refit_error.is_some());
    }

    /// Regression test for the mid-refit health bug: `fitted` and
    /// `model_epoch` are read from one atomically-replaced slot, so a
    /// health snapshot can never report a fitted predictor without the
    /// matching model epoch — and the epoch always names the revision the
    /// serving model's history was read at, even across failed refits.
    #[test]
    fn health_fitted_flag_and_model_epoch_stay_consistent() {
        let spec = DatasetSpec::coauthor().scaled(0.15);
        let g = spec.generate(9);
        let mut links: Vec<_> = g.links().collect();
        links.sort_by_key(|l| l.t);
        let mut p = OnlineLinkPredictor::new(quick_config());
        for l in links {
            p.observe(l.u, l.v, l.t);
            let h = p.health();
            assert_eq!(
                h.fitted,
                h.model_epoch.is_some(),
                "fitted and model_epoch must flip together"
            );
            if let Some(epoch) = h.model_epoch {
                assert!(epoch <= h.graph_revision);
            }
        }
        assert!(p.is_fitted());
        let epoch_before = p.model_epoch().expect("fitted");
        assert!(p.try_refit().is_ok());
        let epoch_after = p.model_epoch().expect("still fitted");
        assert_eq!(
            epoch_after,
            p.network().revision(),
            "successful refit stamps the current revision"
        );
        assert!(epoch_after >= epoch_before);
        // A failed refit must leave the served epoch untouched.
        let lonely = p.network().node_count() as NodeId + 1;
        p.observe(lonely, lonely, 1); // quarantined: revision unchanged
        let h = p.health();
        assert!(h.fitted);
        assert_eq!(h.model_epoch, Some(epoch_after));
    }

    #[test]
    fn self_loops_are_quarantined_not_fatal() {
        let mut p = OnlineLinkPredictor::new(quick_config());
        p.observe(0, 1, 1);
        let r = p.observe(7, 7, 2);
        assert_eq!(r, Observed::Quarantined(QuarantineReason::SelfLoop));
        assert_eq!(p.stats().self_loops, 1);
        assert_eq!(p.stats().accepted, 1);
        // The quarantined endpoint is registered as an isolated node.
        assert!(p.network().node_count() > 7);
        assert!(!p.network().has_link(7, 7));
    }

    /// Regression test for the score bound check: ids that only ever
    /// appeared in quarantined events are part of the network's id space
    /// after lossy ingestion and must be scoreable (as isolated nodes),
    /// not rejected as unknown.
    #[test]
    fn quarantined_endpoints_remain_scoreable() {
        let spec = DatasetSpec::coauthor().scaled(0.15);
        let g = spec.generate(9);
        let mut links: Vec<_> = g.links().collect();
        links.sort_by_key(|l| l.t);
        let mut p = OnlineLinkPredictor::new(quick_config());
        for l in links {
            p.observe(l.u, l.v, l.t);
        }
        assert!(p.is_fitted());
        let lonely = p.network().node_count() as NodeId + 3;
        p.observe(lonely, lonely, 100);
        assert_eq!(p.stats().self_loops, 1);
        // `lonely` now bounds the id space; the boundary id is valid.
        let s = p.score(lonely, 0);
        assert!(s.is_some(), "known-but-isolated ids must score");
        assert!((0.0..=1.0).contains(&s.unwrap()));
        assert!(p.score(lonely + 1, 0).is_none(), "beyond the id space");
    }

    #[test]
    fn duplicates_and_stale_events_quarantined_when_configured() {
        let mut p = OnlineLinkPredictor::new(OnlinePredictorConfig {
            quarantine_duplicates: true,
            max_lag: Some(2),
            ..quick_config()
        });
        assert!(p.observe(0, 1, 1).is_accepted());
        assert_eq!(
            p.observe(0, 1, 1),
            Observed::Quarantined(QuarantineReason::Duplicate)
        );
        // Same pair at a new tick is a legitimate multigraph link.
        assert!(p.observe(0, 1, 2).is_accepted());
        assert!(p.observe(1, 2, 10).is_accepted());
        assert_eq!(
            p.observe(2, 3, 1),
            Observed::Quarantined(QuarantineReason::Stale { lag: 9 })
        );
        assert_eq!(p.stats().duplicates, 1);
        assert_eq!(p.stats().stale, 1);
        assert_eq!(p.stats().accepted, 3);
        assert_eq!(p.stats().quarantined(), 2);
        // Stale endpoints still become known nodes.
        assert!(p.network().node_count() >= 4);
    }

    #[test]
    fn failed_refits_back_off_exponentially() {
        let mut p = OnlineLinkPredictor::new(OnlinePredictorConfig {
            refit_every: 1,
            max_backoff: 8,
            ..quick_config()
        });
        // A stream that only ever repeats one pair produces no fresh
        // (positive) links in any prediction window, so every refit fails
        // while the clock still advances.
        for t in 1..=20u32 {
            p.observe(0, 1, t);
        }
        // Attempts land at t = 1, 3, 7, 15 (intervals 2, 4, 8, 8-capped),
        // not at all 20 ticks.
        assert_eq!(p.stats().failed_refits, 4);
        assert_eq!(p.health().current_backoff, 8);
        assert!(p.health().last_refit_error.is_some());
    }

    /// The tentpole contract: for every pair kind — valid, degenerate,
    /// out-of-range — `score_batch` returns exactly what the per-pair
    /// `score` path returns, to the bit.
    #[test]
    fn score_batch_matches_per_pair_score_bitwise() {
        let spec = DatasetSpec::coauthor().scaled(0.15);
        let g = spec.generate(9);
        let mut links: Vec<_> = g.links().collect();
        links.sort_by_key(|l| l.t);
        let mut p = OnlineLinkPredictor::new(quick_config());
        for l in links {
            p.observe(l.u, l.v, l.t);
        }
        assert!(p.is_fitted());
        let n = p.network().node_count() as NodeId;
        let pairs: Vec<(NodeId, NodeId)> = vec![
            (0, 1),
            (2, 5),
            (3, 3),     // degenerate: self pair
            (0, n + 4), // degenerate: beyond the id space
            (1, 0),     // direction matters to the extractor, not validity
            (0, 1),     // repeat: must hit the pair memo, same bits
        ];
        let individual: Vec<_> =
            pairs.iter().map(|&(u, v)| p.score(u, v)).collect();
        let batch = p.score_batch(&pairs);
        assert_eq!(batch.len(), pairs.len());
        for (i, (b, s)) in batch.iter().zip(&individual).enumerate() {
            match (b, s) {
                (Some(b), Some(s)) => assert_eq!(
                    b.to_bits(),
                    s.to_bits(),
                    "pair {:?} diverged",
                    pairs[i]
                ),
                (None, None) => {}
                other => panic!("pair {:?}: {other:?}", pairs[i]),
            }
        }
    }

    #[test]
    fn repeated_batches_hit_the_cache_until_the_graph_moves() {
        let spec = DatasetSpec::coauthor().scaled(0.15);
        let g = spec.generate(9);
        let mut links: Vec<_> = g.links().collect();
        links.sort_by_key(|l| l.t);
        let mut p = OnlineLinkPredictor::new(quick_config());
        for l in links {
            p.observe(l.u, l.v, l.t);
        }
        assert!(p.is_fitted());
        let pairs: Vec<(NodeId, NodeId)> = vec![(0, 1), (0, 2), (1, 2), (2, 5)];
        let first = p.score_batch(&pairs);
        let again = p.score_batch(&pairs);
        assert_eq!(first, again, "warm batch must reproduce cold batch");
        let stats = p.cache_stats();
        assert!(
            stats.pair_hits >= pairs.len() as u64,
            "second batch should be pair-memo hits, got {stats:?}"
        );
        // An accepted observation bumps the revision; the next batch
        // recomputes instead of serving stale features.
        let t = p.network().max_timestamp().unwrap_or(0) + 1;
        assert!(p.observe(0, 2, t).is_accepted());
        let _ = p.score_batch(&pairs);
        assert!(
            p.cache_stats().invalidations >= 1,
            "mutation must invalidate the memo"
        );
    }

    #[test]
    fn fallback_score_is_monotone_in_common_neighbors() {
        let mut p = OnlineLinkPredictor::new(quick_config());
        p.observe(0, 1, 1);
        p.observe(1, 2, 1);
        p.observe(0, 3, 1);
        p.observe(3, 2, 1);
        // 0 and 2 share {1, 3}; 0 and 1 share nothing.
        assert!((p.common_neighbor_fallback(0, 2) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.common_neighbor_fallback(0, 1), 0.0);
        assert_eq!(p.stats().degraded_scores(), 0);
    }

    fn durable_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("ssf-stream-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Page-cache-only fsync keeps unit tests fast; the records still
    /// reach the file, just without waiting on the disk.
    fn fast_policy() -> DurabilityPolicy {
        DurabilityPolicy {
            fsync: ssf_persist::FsyncPolicy::Never,
            ..DurabilityPolicy::default()
        }
    }

    fn clean_events() -> Vec<(NodeId, NodeId, Timestamp)> {
        let spec = DatasetSpec::coauthor().scaled(0.15);
        let g = spec.generate(9);
        let mut links: Vec<_> = g.links().collect();
        links.sort_by_key(|l| l.t);
        links.iter().map(|l| (l.u, l.v, l.t)).collect()
    }

    fn assert_scores_match(
        a: &mut OnlineLinkPredictor,
        b: &mut OnlineLinkPredictor,
    ) {
        let n = (a.network().node_count() as NodeId).min(24);
        for u in 0..n {
            for v in (u + 1)..n {
                let (sa, sb) = (a.score(u, v), b.score(u, v));
                assert_eq!(sa, sb, "scores diverge at pair ({u}, {v})");
            }
        }
    }

    #[test]
    fn reopen_replays_the_wal_bit_identically() {
        let dir = durable_dir("reopen");
        let events = clean_events();
        let mut p = OnlineLinkPredictor::with_durability(
            quick_config(),
            &dir,
            fast_policy(),
        )
        .expect("fresh durable predictor");
        let mut twin = OnlineLinkPredictor::new(quick_config());
        for &(u, v, t) in &events {
            p.observe(u, v, t);
            twin.observe(u, v, t);
        }
        assert!(p.is_durable());
        assert_eq!(p.durability_dir(), Some(dir.as_path()));
        assert!(p.last_wal_error().is_none());
        drop(p);

        let (mut r, report) = OnlineLinkPredictor::open(quick_config(), &dir)
            .expect("recovery from a clean shutdown");
        assert_eq!(report.records_replayed, events.len() as u64);
        assert_eq!(report.snapshot_revision, None, "never checkpointed");
        assert!(!report.is_lossy());
        assert_eq!(r.network().revision(), twin.network().revision());
        assert_eq!(r.is_fitted(), twin.is_fitted());
        assert_scores_match(&mut r, &mut twin);
    }

    #[test]
    fn checkpoint_then_reopen_replays_only_the_tail() {
        let dir = durable_dir("checkpoint");
        let events = clean_events();
        let mid = events.len() / 2;
        let mut p = OnlineLinkPredictor::with_durability(
            quick_config(),
            &dir,
            fast_policy(),
        )
        .expect("fresh durable predictor");
        let mut twin = OnlineLinkPredictor::new(quick_config());
        for &(u, v, t) in &events[..mid] {
            p.observe(u, v, t);
            twin.observe(u, v, t);
        }
        let snapshot = p.checkpoint().expect("checkpoint");
        assert!(snapshot.exists());
        for &(u, v, t) in &events[mid..] {
            p.observe(u, v, t);
            twin.observe(u, v, t);
        }
        drop(p);

        let (mut r, report) = OnlineLinkPredictor::open(quick_config(), &dir)
            .expect("recovery from snapshot + WAL tail");
        assert!(report.snapshot_revision.is_some());
        assert_eq!(report.records_replayed, (events.len() - mid) as u64);
        assert!(!report.is_lossy());
        assert_eq!(r.network().revision(), twin.network().revision());
        assert_eq!(r.is_fitted(), twin.is_fitted());
        assert_scores_match(&mut r, &mut twin);
    }

    #[test]
    fn stale_wal_prefix_below_snapshot_survives_reopen() {
        let dir = durable_dir("stale-prefix");
        let events = clean_events();
        let mut p = OnlineLinkPredictor::with_durability(
            quick_config(),
            &dir,
            fast_policy(),
        )
        .expect("fresh durable predictor");
        for &(u, v, t) in &events[..12] {
            p.observe(u, v, t);
        }
        let segments = ssf_persist::list_segments(&dir).expect("list");
        assert_eq!(segments.len(), 1, "one live segment before checkpoint");
        let seg_path = segments[0].1.clone();
        let pre = std::fs::read(&seg_path).expect("pre-checkpoint bytes");
        p.checkpoint().expect("checkpoint at sequence 12");
        drop(p);

        // Crash simulation: neither the checkpoint's segment deletion
        // nor its rotation became durable — the pre-checkpoint segment
        // reappears with a torn tail (so its repaired prefix ends
        // *below* the snapshot's coverage) and the rotated segment is
        // gone.
        for (_, path) in ssf_persist::list_segments(&dir).expect("list") {
            std::fs::remove_file(path).expect("drop post-checkpoint wal");
        }
        const HEADER: usize = 16;
        const RECORD: usize = 29;
        let records = (pre.len() - HEADER) / RECORD;
        assert!(records >= 2, "need a multi-record segment");
        std::fs::write(&seg_path, &pre[..HEADER + (records - 1) * RECORD])
            .expect("write stale prefix");

        // Recovery has nothing to replay — the stale prefix is fully
        // covered by the snapshot — and must reclaim it so it cannot
        // masquerade as the head of the log on the *next* open.
        let (mut p, report) = OnlineLinkPredictor::open(quick_config(), &dir)
            .expect("recovery over a stale prefix");
        assert_eq!(report.records_replayed, 0);
        assert!(report.segments_removed >= 1, "stale prefix reclaimed");
        for &(u, v, t) in &events[12..18] {
            p.observe(u, v, t);
        }
        let revision = p.network().revision();
        drop(p);

        // The records appended after that recovery must not be taken
        // for a sequence gap and repaired away.
        let (r, report) = OnlineLinkPredictor::open(quick_config(), &dir)
            .expect("reopen after post-recovery appends");
        assert!(!report.is_lossy(), "fake gap detected: {report:?}");
        assert_eq!(report.records_replayed, 6);
        assert_eq!(r.network().revision(), revision);
    }

    #[test]
    fn wal_error_is_sticky_until_checkpoint() {
        let dir = durable_dir("sticky");
        let mut p = OnlineLinkPredictor::with_durability(
            quick_config(),
            &dir,
            fast_policy(),
        )
        .expect("fresh durable predictor");
        p.observe(0, 1, 1);
        // Simulate an earlier append failure: that event is in memory
        // but missing from the durable history.
        p.durability.as_mut().unwrap().last_wal_error =
            Some("disk on fire".to_string());
        p.observe(1, 2, 2);
        assert_eq!(
            p.last_wal_error(),
            Some("disk on fire"),
            "a successful append must not hide the degradation"
        );
        p.checkpoint().expect("checkpoint");
        assert!(
            p.last_wal_error().is_none(),
            "a checkpoint persists the full state and resets the marker"
        );
    }

    #[test]
    fn checkpoint_requires_durability() {
        let mut p = OnlineLinkPredictor::new(quick_config());
        let err = p.checkpoint().expect_err("no durability attached");
        assert!(matches!(err, SsfError::Io(_)), "{err}");
    }

    #[test]
    fn clones_detach_the_wal() {
        let dir = durable_dir("clone");
        let p = OnlineLinkPredictor::with_durability(
            quick_config(),
            &dir,
            fast_policy(),
        )
        .expect("fresh durable predictor");
        let c = p.clone();
        assert!(p.is_durable());
        assert!(!c.is_durable(), "a WAL has exactly one writer");
        assert_eq!(c.durability_dir(), None);
    }

    #[test]
    fn open_rejects_a_snapshot_from_another_configuration() {
        let dir = durable_dir("fingerprint");
        let mut p = OnlineLinkPredictor::with_durability(
            quick_config(),
            &dir,
            fast_policy(),
        )
        .expect("fresh durable predictor");
        for &(u, v, t) in &clean_events()[..40] {
            p.observe(u, v, t);
        }
        p.checkpoint().expect("checkpoint");
        drop(p);

        let other = OnlinePredictorConfig {
            refit_every: 7,
            ..quick_config()
        };
        let err = OnlineLinkPredictor::open(other, &dir)
            .expect_err("hyperparameters changed under the state");
        assert!(matches!(err, SsfError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn open_to_revision_rewinds_to_a_past_state() {
        let dir = durable_dir("rewind");
        let events = clean_events();
        let mid = events.len() / 2;
        let mut p = OnlineLinkPredictor::with_durability(
            quick_config(),
            &dir,
            fast_policy(),
        )
        .expect("fresh durable predictor");
        let mut twin = OnlineLinkPredictor::new(quick_config());
        let mut target = 0;
        for (i, &(u, v, t)) in events.iter().enumerate() {
            p.observe(u, v, t);
            if i < mid {
                twin.observe(u, v, t);
            }
            if i + 1 == mid {
                target = p.network().revision();
            }
        }
        p.sync_wal().expect("sync");
        drop(p);

        let (mut r, report) =
            OnlineLinkPredictor::open_to_revision(quick_config(), &dir, target)
                .expect("rewind within durable history");
        assert!(!r.is_durable(), "time travel must not fork the log");
        assert_eq!(report.records_replayed, mid as u64);
        assert_eq!(r.network().revision(), target);
        assert_eq!(r.network().revision(), twin.network().revision());
        assert_scores_match(&mut r, &mut twin);

        let err = OnlineLinkPredictor::open_to_revision(
            quick_config(),
            &dir,
            u64::MAX,
        )
        .expect_err("target beyond the durable history");
        assert!(matches!(err, SsfError::Corrupt { .. }), "{err}");
    }

    fn windowed_config(width: Timestamp) -> OnlinePredictorConfig {
        OnlinePredictorConfig {
            window: Some(width),
            ..quick_config()
        }
    }

    #[test]
    fn windowed_ingest_expires_behind_the_cutoff_and_quarantines_stragglers() {
        let mut p = OnlineLinkPredictor::new(windowed_config(10));
        assert!(p.observe(0, 1, 0).is_accepted());
        assert!(p.observe(1, 2, 5).is_accepted());
        assert_eq!(
            p.window(),
            Some(Window {
                width: 10,
                horizon: 5
            })
        );
        // Jumping the horizon to 12 implicitly expires t < 2.
        assert!(p.observe(2, 3, 12).is_accepted());
        assert_eq!(p.horizon(), 12);
        assert!(!p.network().has_link(0, 1), "t = 0 fell behind the cutoff");
        assert!(p.network().has_link(1, 2), "t = 5 is still in the window");
        // A link exactly at the cutoff is kept (inclusive boundary)...
        assert!(p.observe(4, 5, 2).is_accepted());
        // ...one tick behind it is quarantined, endpoints registered.
        assert_eq!(
            p.observe(6, 7, 1),
            Observed::Quarantined(QuarantineReason::OutOfWindow { cutoff: 2 })
        );
        assert_eq!(p.stats().out_of_window, 1);
        assert_eq!(p.stats().quarantined(), 1);
        assert!(p.network().node_count() >= 8);
        // An explicit advance expires the cutoff-hugging link and says so.
        let report = p.advance(13).expect("monotone").expect("horizon moved");
        assert_eq!(report.cutoff, 3);
        assert_eq!(report.expired_links, 1);
        assert!(report.affected.contains(&4) && report.affected.contains(&5));
        // Horizon regressions are typed errors, not silent no-ops.
        assert!(p.advance(5).is_err());
        // The copy-on-write mirror stayed in lockstep through expiry, and
        // the published snapshot carries the window for its batch key.
        let snap = p.snapshot();
        assert_eq!(snap.window(), p.window());
        assert_eq!(snap.epoch(), p.network().revision());
    }

    /// A window wide enough that nothing ever expires must be invisible:
    /// scores agree to the bit with the unbounded predictor, across the
    /// per-pair path, the cached batch path, and a compact-storage twin.
    #[test]
    fn windowed_scores_match_unbounded_when_nothing_expires() {
        let events = clean_events();
        let max_t = events.iter().map(|&(_, _, t)| t).max().unwrap_or(0);
        let mut w = OnlineLinkPredictor::new(windowed_config(max_t));
        let mut c = OnlineLinkPredictor::new(OnlinePredictorConfig {
            storage: StorageMode::Compact,
            ..windowed_config(max_t)
        });
        let mut u = OnlineLinkPredictor::new(quick_config());
        for &(a, b, t) in &events {
            w.observe(a, b, t);
            c.observe(a, b, t);
            u.observe(a, b, t);
        }
        assert!(w.is_fitted() && c.is_fitted() && u.is_fitted());
        assert_eq!(w.network().link_count(), u.network().link_count());
        assert_scores_match(&mut w, &mut u);
        assert_scores_match(&mut c, &mut u);
        // Cached batch scoring equals the uncached per-pair path bitwise
        // on the windowed predictor too.
        let pairs: Vec<(NodeId, NodeId)> =
            vec![(0, 1), (2, 5), (3, 3), (1, 4), (0, 1)];
        let individual: Vec<_> =
            pairs.iter().map(|&(a, b)| w.score(a, b)).collect();
        assert_eq!(w.score_batch(&pairs), individual);
    }

    /// An advance that expires `d` links must invalidate cache entries
    /// proportional to the touched nodes — never flush the whole memo —
    /// and the batch path must stay bit-identical to the uncached path
    /// afterwards.
    #[test]
    fn windowed_advance_invalidates_the_cache_proportionally() {
        let events = clean_events();
        let max_t = events.iter().map(|&(_, _, t)| t).max().unwrap_or(0);
        let mut ticks: Vec<Timestamp> =
            events.iter().map(|&(_, _, t)| t).collect();
        ticks.sort_unstable();
        ticks.dedup();
        assert!(ticks.len() >= 2, "need at least two distinct ticks");
        let mut p = OnlineLinkPredictor::new(windowed_config(max_t));
        for &(a, b, t) in &events {
            p.observe(a, b, t);
        }
        assert!(p.is_fitted());
        let pairs: Vec<(NodeId, NodeId)> = vec![(0, 1), (0, 2), (1, 2), (2, 5)];
        let _ = p.score_batch(&pairs);
        let _ = p.score_batch(&pairs); // warm
        let before = p.cache_stats();
        // Advance so the cutoff lands exactly on the second distinct
        // tick: precisely the first tick's links expire.
        let report = p
            .advance(ticks[1].saturating_add(max_t))
            .expect("monotone")
            .expect("horizon moved");
        assert!(report.expired_links >= 1, "first tick must expire");
        let after = p.cache_stats();
        assert_eq!(
            after.invalidations, before.invalidations,
            "a window advance must never blanket-flush the memo"
        );
        assert!(
            after.selective_invalidations > before.selective_invalidations,
            "the advance re-keys the cache selectively"
        );
        // Post-expiry, cached and uncached scoring still agree bitwise.
        let individual: Vec<_> =
            pairs.iter().map(|&(a, b)| p.score(a, b)).collect();
        assert_eq!(p.score_batch(&pairs), individual);
    }

    /// Kill-and-replay for windowed predictors: WAL-logged advances and
    /// out-of-window quarantines replay to the same window, stats and
    /// bit-identical scores; the checkpoint carries the window so the
    /// tail replays against the right cutoff.
    #[test]
    fn windowed_durable_reopen_replays_advances_bit_identically() {
        let dir = durable_dir("windowed");
        let events = clean_events();
        let max_t = events.iter().map(|&(_, _, t)| t).max().unwrap_or(0);
        let width = max_t / 2;
        let mid = events.len() / 2;
        let config = windowed_config(width);
        let mut p = OnlineLinkPredictor::with_durability(
            config.clone(),
            &dir,
            fast_policy(),
        )
        .expect("fresh durable predictor");
        let mut twin = OnlineLinkPredictor::new(config.clone());
        for &(a, b, t) in &events[..mid] {
            p.observe(a, b, t);
            twin.observe(a, b, t);
        }
        // Checkpoint between two advances: one lands in the snapshot's
        // window metadata, the other must replay from the WAL.
        let first = p.horizon().saturating_add(1);
        assert_eq!(
            p.advance(first).expect("monotone"),
            twin.advance(first).expect("monotone")
        );
        p.checkpoint().expect("checkpoint");
        for &(a, b, t) in &events[mid..] {
            p.observe(a, b, t);
            twin.observe(a, b, t);
        }
        let second = p.horizon().saturating_add(width / 2);
        assert_eq!(
            p.advance(second).expect("monotone"),
            twin.advance(second).expect("monotone")
        );
        // A straggler behind the cutoff exercises the out-of-window
        // tally through the WAL and the snapshot.
        p.observe(0, 1, 0);
        twin.observe(0, 1, 0);
        assert_eq!(p.stats().out_of_window, twin.stats().out_of_window);
        drop(p);

        let (mut r, report) = OnlineLinkPredictor::open(config, &dir)
            .expect("recovery of a windowed predictor");
        assert!(!report.is_lossy());
        assert_eq!(r.window(), twin.window());
        assert_eq!(r.horizon(), twin.horizon());
        assert_eq!(r.network().revision(), twin.network().revision());
        assert_eq!(r.stats().out_of_window, twin.stats().out_of_window);
        assert_eq!(r.is_fitted(), twin.is_fitted());
        assert_scores_match(&mut r, &mut twin);
    }

    /// Boundary sweep: zero-width windows and horizons at `u32::MAX`
    /// must neither panic nor overflow anywhere in the ingest/score
    /// paths.
    #[test]
    fn zero_width_and_saturating_horizons_are_regression_safe() {
        let mut p = OnlineLinkPredictor::new(windowed_config(0));
        assert!(p.observe(0, 1, 3).is_accepted());
        assert!(p.observe(1, 2, 3).is_accepted());
        assert_eq!(p.network().link_count(), 2);
        assert!(p.observe(2, 3, 4).is_accepted());
        assert_eq!(
            p.network().link_count(),
            1,
            "zero width keeps only the horizon tick"
        );
        assert_eq!(
            p.observe(3, 4, 3),
            Observed::Quarantined(QuarantineReason::OutOfWindow { cutoff: 4 })
        );
        // The saturating horizon: `present = max_timestamp + 1` must
        // saturate, not overflow, in both scoring paths.
        assert!(p.observe(4, 5, u32::MAX).is_accepted());
        assert_eq!(p.horizon(), u32::MAX);
        assert!(p.score(0, 1).is_none(), "unfitted, but must not panic");
        let _ = p.score_batch(&[(4, 5), (0, 1)]);
        // Advancing to the current horizon is a no-op, not an error.
        assert!(matches!(p.advance(u32::MAX), Ok(None)));
        // A `u32::MAX` width saturates the cutoff at 0: nothing expires.
        let mut q = OnlineLinkPredictor::new(windowed_config(u32::MAX));
        assert!(q.observe(0, 1, 0).is_accepted());
        let report = q
            .advance(u32::MAX)
            .expect("monotone")
            .expect("horizon moved");
        assert_eq!(report.expired_links, 0);
        assert_eq!(q.network().link_count(), 1, "cutoff saturates at 0");
    }
}
