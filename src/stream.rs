//! Online link prediction over a live link stream.
//!
//! The paper models dynamic networks as a stream of timestamped links
//! (§III): "the links with timestamps emerge as a stream. We create the
//! dynamic network from a blank graph and keep adding links". This module
//! provides the matching runtime: feed links as they arrive, and the
//! predictor periodically refits an [`SsfnmModel`] on the accumulated
//! history so candidate pairs can be scored at any moment.

use dyngraph::{DynamicNetwork, NodeId, Timestamp};
use ssf_eval::{backtest_splits, BacktestConfig, Split, SplitConfig, SplitError};

use crate::methods::MethodOptions;
use crate::model::SsfnmModel;

/// Configuration of the online predictor.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlinePredictorConfig {
    /// Hyperparameters shared with the offline experiments.
    pub method: MethodOptions,
    /// Refit whenever the stream has advanced this many ticks since the
    /// last (attempted) fit.
    pub refit_every: u32,
    /// Split settings used to carve training sets out of the history.
    pub split: SplitConfig,
    /// Minimum positives a training split must contain.
    pub min_positives: usize,
    /// Earlier-window folds used to augment training (0 = none).
    pub history_folds: u32,
}

impl Default for OnlinePredictorConfig {
    fn default() -> Self {
        OnlinePredictorConfig {
            method: MethodOptions::default(),
            refit_every: 5,
            split: SplitConfig::default(),
            min_positives: 30,
            history_folds: 2,
        }
    }
}

/// An online link predictor over a growing dynamic network.
///
/// # Example
///
/// ```rust
/// use ssf_repro::stream::{OnlineLinkPredictor, OnlinePredictorConfig};
///
/// let mut p = OnlineLinkPredictor::new(OnlinePredictorConfig::default());
/// p.observe(0, 1, 1);
/// p.observe(1, 2, 2);
/// assert!(p.score(0, 2).is_none()); // not enough history to fit yet
/// ```
#[derive(Debug, Clone)]
pub struct OnlineLinkPredictor {
    config: OnlinePredictorConfig,
    network: DynamicNetwork,
    model: Option<SsfnmModel>,
    last_fit_attempt: Option<Timestamp>,
}

impl OnlineLinkPredictor {
    /// Creates an empty predictor.
    pub fn new(config: OnlinePredictorConfig) -> Self {
        OnlineLinkPredictor {
            config,
            network: DynamicNetwork::new(),
            model: None,
            last_fit_attempt: None,
        }
    }

    /// Feeds one stream event. Timestamps should be non-decreasing (the
    /// stream model); out-of-order links are accepted but only the maximum
    /// timestamp drives refitting. Refits automatically every
    /// `refit_every` ticks (silently skipping when the history cannot
    /// produce a training split yet).
    ///
    /// # Panics
    ///
    /// Panics if `u == v`.
    pub fn observe(&mut self, u: NodeId, v: NodeId, t: Timestamp) {
        self.network.add_link(u, v, t);
        let now = self.network.max_timestamp().expect("just added a link");
        let due = match self.last_fit_attempt {
            None => true,
            Some(last) => now.saturating_sub(last) >= self.config.refit_every,
        };
        if due {
            self.last_fit_attempt = Some(now);
            let _ = self.refit();
        }
    }

    /// Forces a refit on the current history.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SplitError`] when the accumulated stream
    /// cannot produce a usable training split (too short, no fresh pairs);
    /// the previous model, if any, stays active.
    pub fn refit(&mut self) -> Result<(), SplitError> {
        let split = Split::with_min_positives(
            &self.network,
            &self.config.split,
            self.config.min_positives,
        )?;
        let extra = if self.config.history_folds > 0 {
            backtest_splits(
                &split.history,
                &BacktestConfig {
                    split: self.config.split,
                    folds: self.config.history_folds,
                    stride: 1,
                    min_positives: self.config.min_positives / 2,
                },
            )
            .unwrap_or_default()
        } else {
            Vec::new()
        };
        self.model = Some(SsfnmModel::fit(&split, &extra, &self.config.method));
        Ok(())
    }

    /// Scores a candidate pair with the latest fitted model, or `None` if
    /// no model could be fitted yet or an endpoint is unknown.
    pub fn score(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let model = self.model.as_ref()?;
        let n = self.network.node_count() as NodeId;
        if u == v || u >= n || v >= n {
            return None;
        }
        let present = self.network.max_timestamp()? + 1;
        Some(model.score(&self.network, u, v, present))
    }

    /// `true` once a model has been fitted.
    pub fn is_fitted(&self) -> bool {
        self.model.is_some()
    }

    /// The accumulated network.
    pub fn network(&self) -> &DynamicNetwork {
        &self.network
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::{generate, DatasetSpec};

    fn quick_config() -> OnlinePredictorConfig {
        OnlinePredictorConfig {
            method: MethodOptions {
                nm_epochs: 15,
                ..MethodOptions::default()
            },
            refit_every: 5,
            min_positives: 10,
            history_folds: 1,
            ..OnlinePredictorConfig::default()
        }
    }

    #[test]
    fn no_model_until_enough_history() {
        let mut p = OnlineLinkPredictor::new(quick_config());
        p.observe(0, 1, 1);
        p.observe(1, 2, 1);
        assert!(!p.is_fitted());
        assert!(p.score(0, 2).is_none());
    }

    #[test]
    fn fits_once_stream_is_rich_enough() {
        let spec = DatasetSpec::coauthor().scaled(0.15);
        let g = generate(&spec, 9);
        let mut links: Vec<_> = g.links().collect();
        links.sort_by_key(|l| l.t);
        let mut p = OnlineLinkPredictor::new(quick_config());
        for l in links {
            p.observe(l.u, l.v, l.t);
        }
        assert!(p.is_fitted(), "stream should eventually support a fit");
        let s = p.score(0, 1);
        assert!(s.is_some());
        assert!((0.0..=1.0).contains(&s.unwrap()));
    }

    #[test]
    fn unknown_nodes_score_none() {
        let spec = DatasetSpec::coauthor().scaled(0.15);
        let g = generate(&spec, 9);
        let mut p = OnlineLinkPredictor::new(quick_config());
        for l in g.links() {
            p.observe(l.u, l.v, l.t);
        }
        let n = p.network().node_count() as NodeId;
        assert!(p.score(n + 5, 0).is_none());
        assert!(p.score(2, 2).is_none());
    }

    #[test]
    fn refit_error_keeps_previous_model() {
        let mut p = OnlineLinkPredictor::new(quick_config());
        p.observe(0, 1, 1);
        assert!(p.refit().is_err());
        assert!(!p.is_fitted());
    }
}
