//! A trained, reusable SSFNM model — the deployment-shaped API.
//!
//! [`crate::methods::Method::evaluate`] trains and throws the model away
//! (all the paper's experiments need is the metrics). Applications want to
//! keep the fitted model and score arbitrary candidate pairs later;
//! [`SsfnmModel`] packages the extractor configuration, the fitted feature
//! scaler and the neural machine together.

use std::io::{self, BufRead, Write};

use dyngraph::{GraphView, NodeId, Timestamp};
use linalg::Matrix;
use obs::ObsHandle;
use ssf_core::{
    EntryEncoding, ExtractError, ExtractionCache, SsfConfig, SsfExtractor,
};
use ssf_eval::Split;
use ssf_ml::{persist, FitError, MlpConfig, NeuralMachine, StandardScaler};

use crate::error::SsfError;
use crate::methods::MethodOptions;

/// A fitted SSF + neural-machine link predictor.
#[derive(Debug, Clone, PartialEq)]
pub struct SsfnmModel {
    extractor: SsfExtractor,
    scaler: StandardScaler,
    model: NeuralMachine,
}

impl SsfnmModel {
    /// Trains on a split (plus optional earlier-window folds, as in
    /// [`crate::methods::Method::evaluate_augmented`]).
    ///
    /// # Errors
    ///
    /// [`SsfError::Fit`] when the combined folds hold no training samples,
    /// [`SsfError::Extract`] when a sample pair is degenerate (equal or
    /// out-of-range endpoints — possible after lossy ingestion).
    pub fn try_fit(
        split: &Split,
        extra_train: &[Split],
        opts: &MethodOptions,
    ) -> Result<Self, SsfError> {
        Self::try_fit_observed(split, extra_train, opts, &ObsHandle::noop())
    }

    /// [`SsfnmModel::try_fit`] with telemetry: the whole fit runs under an
    /// `ssf.model.fit` span, the feature-extraction prefix under
    /// `ssf.model.extract`, training rows land in the
    /// `ssf.model.train_rows` counter, and the neural machine trains via
    /// [`NeuralMachine::train_observed`]. The fitted model is identical to
    /// the unobserved path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SsfnmModel::try_fit`].
    pub fn try_fit_observed(
        split: &Split,
        extra_train: &[Split],
        opts: &MethodOptions,
        obs: &ObsHandle,
    ) -> Result<Self, SsfError> {
        let _fit_span = obs.span("ssf.model.fit");
        let cfg = SsfConfig::new(opts.k)
            .with_theta(opts.theta)
            .with_encoding(opts.ssf_encoding);
        let extractor = SsfExtractor::new(cfg);

        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut labels: Vec<usize> = Vec::new();
        let extract_span = obs.span("ssf.model.extract");
        for fold in std::iter::once(split).chain(extra_train) {
            let present =
                fold.history.max_timestamp().map_or(fold.l_t, |t| t + 1);
            let samples: Vec<_> = if std::ptr::eq(fold, split) {
                fold.train.iter().collect()
            } else {
                fold.train.iter().chain(&fold.test).collect()
            };
            for s in samples {
                rows.push(
                    extractor
                        .try_extract(&fold.history, s.u, s.v, present)?
                        .into_values(),
                );
                labels.push(usize::from(s.label));
            }
        }
        extract_span.finish();
        obs.counter("ssf.model.train_rows", rows.len() as u64);
        if rows.is_empty() {
            return Err(SsfError::Fit(FitError::EmptyDesign));
        }
        let dim = rows[0].len();
        let x_raw =
            Matrix::from_fn(rows.len(), dim, |i, j| rows[i][j]).map(f64::ln_1p);
        let scaler = StandardScaler::fit(&x_raw);
        let x = scaler.transform(&x_raw);
        let model = NeuralMachine::train_observed(
            &x,
            &labels,
            MlpConfig {
                epochs: opts.nm_epochs,
                seed: opts.seed,
                ..MlpConfig::default()
            },
            obs,
        );
        Ok(SsfnmModel {
            extractor,
            scaler,
            model,
        })
    }

    /// Scores a candidate pair against a history network, with `present`
    /// the timestamp prediction is made at (usually `max_timestamp + 1`).
    /// Returns the probability that the link emerges.
    ///
    /// # Errors
    ///
    /// [`ExtractError`] when the pair is degenerate (equal endpoints or an
    /// endpoint outside `g`'s id space).
    pub fn try_score<G: GraphView + ?Sized>(
        &self,
        g: &G,
        u: NodeId,
        v: NodeId,
        present: Timestamp,
    ) -> Result<f64, ExtractError> {
        let mut f = self.extractor.try_extract(g, u, v, present)?.into_values();
        for x in &mut f {
            *x = x.ln_1p();
        }
        self.scaler.transform_row(&mut f);
        Ok(self.model.score(&f))
    }

    /// [`SsfnmModel::try_score`] against an [`ExtractionCache`]:
    /// bit-identical scores, with the expensive extraction prefix
    /// amortized across the pairs and graph revisions the cache has seen.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SsfnmModel::try_score`].
    pub fn try_score_cached<G: GraphView + ?Sized>(
        &self,
        g: &G,
        u: NodeId,
        v: NodeId,
        present: Timestamp,
        cache: &mut ExtractionCache,
    ) -> Result<f64, ExtractError> {
        let mut f = self
            .extractor
            .try_extract_cached(g, u, v, present, cache)?
            .into_values();
        for x in &mut f {
            *x = x.ln_1p();
        }
        self.scaler.transform_row(&mut f);
        Ok(self.model.score(&f))
    }

    /// The extractor configuration the model was trained with.
    pub fn config(&self) -> &SsfConfig {
        self.extractor.config()
    }

    /// Persists the complete predictor — extractor configuration, feature
    /// scaler and network — to one plain-text stream (see
    /// [`ssf_ml::persist`] for the format guarantees).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save<W: Write>(&self, mut w: W) -> io::Result<()> {
        let cfg = self.extractor.config();
        writeln!(w, "ssf-model v1")?;
        writeln!(
            w,
            "ssf-config k={} encoding={} max_h={}",
            cfg.k,
            cfg.encoding.as_str(),
            cfg.max_h
        )?;
        persist::write_floats(&mut w, "theta", [cfg.decay.theta()])?;
        self.scaler.write_to(&mut w)?;
        self.model.write_to(&mut w)
    }

    /// Loads a predictor written by [`SsfnmModel::save`].
    ///
    /// # Errors
    ///
    /// `InvalidData` on version/format mismatches, plus reader errors.
    pub fn load<R: BufRead>(mut r: R) -> io::Result<Self> {
        persist::expect_line(&mut r, "ssf-model v1")?;
        let line = persist::read_line(&mut r)?;
        let mut k = None;
        let mut encoding = None;
        let mut max_h = None;
        for field in line.split_whitespace().skip(1) {
            let (key, value) = field.split_once('=').ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "bad config field")
            })?;
            match key {
                "k" => k = value.parse().ok(),
                "encoding" => encoding = EntryEncoding::parse(value),
                "max_h" => max_h = value.parse().ok(),
                _ => {}
            }
        }
        let (Some(k), Some(encoding), Some(max_h)) = (k, encoding, max_h)
        else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "incomplete ssf-config line",
            ));
        };
        let theta = persist::read_floats(&mut r, "theta")?;
        let theta = *theta.first().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "missing theta")
        })?;
        let scaler = StandardScaler::read_from(&mut r)?;
        let model = NeuralMachine::read_from(&mut r)?;
        let cfg = SsfConfig::new(k)
            .with_theta(theta)
            .with_encoding(encoding)
            .with_max_h(max_h);
        Ok(SsfnmModel {
            extractor: SsfExtractor::new(cfg),
            scaler,
            model,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyngraph::DynamicNetwork;
    use ssf_eval::SplitConfig;

    fn triadic_network() -> DynamicNetwork {
        let mut g = DynamicNetwork::new();
        let mut next = 6u32;
        let mut fans = Vec::new();
        for hub in 0..6u32 {
            for _ in 0..6 {
                g.add_link(hub, next, 1 + (next % 7));
                fans.push((hub, next));
                next += 1;
            }
        }
        for w in fans.chunks(6) {
            g.add_link(w[0].1, w[2].1, 10);
            g.add_link(w[1].1, w[3].1, 10);
        }
        g
    }

    #[test]
    fn fit_and_score_round_trip() {
        let g = triadic_network();
        let split = Split::new(&g, &SplitConfig::default()).unwrap();
        let opts = MethodOptions {
            nm_epochs: 40,
            ..MethodOptions::default()
        };
        let model = SsfnmModel::try_fit(&split, &[], &opts).unwrap();
        let present = split.history.max_timestamp().unwrap() + 1;
        // Scores are probabilities.
        for s in &split.test {
            let p = model.try_score(&split.history, s.u, s.v, present).unwrap();
            assert!((0.0..=1.0).contains(&p));
        }
        assert_eq!(model.config().k, opts.k);
    }

    #[test]
    fn save_load_round_trips_scores() {
        let g = triadic_network();
        let split = Split::new(&g, &SplitConfig::default()).unwrap();
        let opts = MethodOptions {
            nm_epochs: 15,
            ..MethodOptions::default()
        };
        let model = SsfnmModel::try_fit(&split, &[], &opts).unwrap();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let loaded = SsfnmModel::load(buf.as_slice()).unwrap();
        let present = split.history.max_timestamp().unwrap() + 1;
        for s in split.test.iter().take(5) {
            assert_eq!(
                model.try_score(&split.history, s.u, s.v, present).ok(),
                loaded.try_score(&split.history, s.u, s.v, present).ok(),
            );
        }
        assert_eq!(loaded.config().k, opts.k);
        // Corruption is rejected, not mis-loaded.
        assert!(SsfnmModel::load(&b"garbage\n"[..]).is_err());
    }

    #[test]
    fn try_score_reports_degenerate_pairs() {
        let g = triadic_network();
        let split = Split::new(&g, &SplitConfig::default()).unwrap();
        let opts = MethodOptions {
            nm_epochs: 10,
            ..MethodOptions::default()
        };
        let model = SsfnmModel::try_fit(&split, &[], &opts).unwrap();
        let present = split.history.max_timestamp().unwrap() + 1;
        assert!(model.try_score(&split.history, 2, 2, present).is_err());
        let far = split.history.node_count() as u32 + 10;
        assert!(model.try_score(&split.history, 0, far, present).is_err());
        let s = &split.test[0];
        let p = model.try_score(&split.history, s.u, s.v, present).unwrap();
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn deterministic_fit() {
        let g = triadic_network();
        let split = Split::new(&g, &SplitConfig::default()).unwrap();
        let opts = MethodOptions {
            nm_epochs: 10,
            ..MethodOptions::default()
        };
        let a = SsfnmModel::try_fit(&split, &[], &opts).unwrap();
        let b = SsfnmModel::try_fit(&split, &[], &opts).unwrap();
        let present = split.history.max_timestamp().unwrap() + 1;
        let s = &split.test[0];
        assert_eq!(
            a.try_score(&split.history, s.u, s.v, present).ok(),
            b.try_score(&split.history, s.u, s.v, present).ok()
        );
    }
}
