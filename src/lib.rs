//! # ssf-repro
//!
//! Reproduction of *"A Universal Method Based on Structure Subgraph Feature
//! for Link Prediction over Dynamic Networks"* (Li, Liang, Zhang, Liu, Wu —
//! ICDCS 2019).
//!
//! This facade crate re-exports the whole workspace so downstream users can
//! depend on a single crate:
//!
//! * [`dyngraph`] — timestamped undirected multigraph substrate.
//! * [`linalg`] — dense matrix/vector kernels.
//! * [`ssf_core`] — the paper's contribution: structure subgraphs and the
//!   Structure Subgraph Feature (SSF).
//! * [`baselines`] — the 11 comparison methods (CN … WLNM, NMF).
//! * [`ssf_ml`] — linear regression and the "neural machine" MLP.
//! * [`obs`] — pipeline observability: span timers, counters, latency
//!   histograms and the stable `ssf.metrics.v1` JSON snapshot.
//! * [`datasets`] — synthetic dynamic-network generators matched to the
//!   paper's seven datasets.
//! * [`ssf_eval`] — train/test splitting, AUC/F1, experiment runner.
//! * [`ssf_persist`] — durable-state primitives: the checksummed `SSF1`
//!   snapshot container and the write-ahead log.
//!
//! The serving-path API lives in this crate directly: [`stream`] (the
//! single-writer online predictor), [`serve`] (immutable scoring
//! snapshots and sharded ingestion), [`coalesce`] (the micro-batching
//! request front-end with deadline budgets and backpressure),
//! [`durability`] (checkpoints, WAL and crash recovery), [`methods`],
//! [`model`] and [`error`]. The everyday names are re-exported at the crate root and
//! bundled in [`prelude`] — downstream code should not import from the
//! internal module paths.
//!
//! ## Quickstart
//!
//! ```rust
//! use ssf_repro::prelude::*;
//!
//! let mut g = DynamicNetwork::new();
//! for (u, v, t) in [(0, 1, 1), (1, 2, 2), (2, 0, 3), (0, 3, 3), (3, 4, 4)] {
//!     g.add_link(u, v, t);
//! }
//! let extractor = SsfExtractor::new(SsfConfig::new(5));
//! let feature = extractor.extract(&g, 1, 4, 5);
//! assert_eq!(feature.values().len(), SsfConfig::new(5).feature_dim());
//! ```
//!
//! ## Serving
//!
//! ```rust
//! use ssf_repro::prelude::*;
//!
//! let config = OnlinePredictorConfig::builder()
//!     .refit_every(10)
//!     .build()
//!     .expect("valid configuration");
//! let mut predictor = OnlineLinkPredictor::new(config);
//! predictor.observe(0, 1, 1);
//! predictor.observe(1, 2, 2);
//!
//! // Publish an immutable epoch; readers score it from any thread while
//! // this writer keeps ingesting.
//! let snapshot = predictor.snapshot();
//! predictor.observe(0, 2, 3);
//! let scores = snapshot.score_batch_parallel(&[(0, 2), (1, 0)], 2);
//! assert_eq!(scores.len(), 2);
//! ```

pub mod coalesce;
pub mod durability;
pub mod error;
pub mod methods;
pub mod model;
pub mod prelude;
pub mod serve;
pub mod stream;

pub use coalesce::{
    BatchScorer, Clock, CoalesceConfig, CoalesceConfigBuilder, CoalesceStats,
    Coalescer, MockClock, Rejection, StepReport, SystemClock, Ticket,
};
pub use durability::{DurabilityPolicy, RecoveryReport};
pub use error::{ConfigError, SsfError};
pub use methods::{Method, MethodOptions};
pub use model::SsfnmModel;
pub use serve::{
    Health, Observed, QuarantineReason, ScoringSnapshot, ShardedPredictor,
    ShardedSnapshot, StreamStats,
};
pub use ssf_core::CacheStats;
pub use ssf_persist::FsyncPolicy;
pub use stream::{
    OnlineLinkPredictor, OnlinePredictorConfig, OnlinePredictorConfigBuilder,
};

pub use baselines;
pub use datasets;
pub use dyngraph;
pub use linalg;
pub use obs;
pub use ssf_core;
pub use ssf_eval;
pub use ssf_ml;
pub use ssf_persist;
