//! # ssf-repro
//!
//! Reproduction of *"A Universal Method Based on Structure Subgraph Feature
//! for Link Prediction over Dynamic Networks"* (Li, Liang, Zhang, Liu, Wu —
//! ICDCS 2019).
//!
//! This facade crate re-exports the whole workspace so downstream users can
//! depend on a single crate:
//!
//! * [`dyngraph`] — timestamped undirected multigraph substrate.
//! * [`linalg`] — dense matrix/vector kernels.
//! * [`ssf_core`] — the paper's contribution: structure subgraphs and the
//!   Structure Subgraph Feature (SSF).
//! * [`baselines`] — the 11 comparison methods (CN … WLNM, NMF).
//! * [`ssf_ml`] — linear regression and the "neural machine" MLP.
//! * [`obs`] — pipeline observability: span timers, counters, latency
//!   histograms and the stable `ssf.metrics.v1` JSON snapshot.
//! * [`datasets`] — synthetic dynamic-network generators matched to the
//!   paper's seven datasets.
//! * [`ssf_eval`] — train/test splitting, AUC/F1, experiment runner.
//!
//! ## Quickstart
//!
//! ```rust
//! use ssf_repro::dyngraph::DynamicNetwork;
//! use ssf_repro::ssf_core::{SsfConfig, SsfExtractor};
//!
//! let mut g = DynamicNetwork::new();
//! for (u, v, t) in [(0, 1, 1), (1, 2, 2), (2, 0, 3), (0, 3, 3), (3, 4, 4)] {
//!     g.add_link(u, v, t);
//! }
//! let extractor = SsfExtractor::new(SsfConfig::new(5));
//! let feature = extractor.extract(&g, 1, 4, 5);
//! assert_eq!(feature.values().len(), SsfConfig::new(5).feature_dim());
//! ```

pub mod error;
pub mod methods;
pub mod model;
pub mod stream;

pub use error::SsfError;

pub use baselines;
pub use datasets;
pub use dyngraph;
pub use linalg;
pub use obs;
pub use ssf_core;
pub use ssf_eval;
pub use ssf_ml;
