//! Unified error taxonomy for the serving path.
//!
//! Every fallible layer of the pipeline has its own typed error
//! ([`GraphError`] for ingestion, [`SplitError`] for evaluation splits,
//! [`ExtractError`] for SSF extraction on degenerate subgraphs,
//! [`FitError`] for model fitting). [`SsfError`] wraps them all so that
//! serving-path callers — the CLI, the online predictor, embedding
//! applications — can propagate one error type with `?` instead of
//! panicking or stringifying at every boundary.

use std::fmt;

use ssf_core::ExtractError;
use ssf_eval::SplitError;
use ssf_ml::FitError;

pub use dyngraph::GraphError;

/// An invalid predictor or serving configuration, rejected before any
/// stream event is processed.
///
/// Produced by [`crate::stream::OnlinePredictorConfigBuilder::build`],
/// [`crate::methods::MethodOptions::validate`] and
/// [`crate::serve::ShardedPredictor::new`]: validation moved from
/// scattered `assert!`s at first use to one typed, testable gate at
/// construction time.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `K` below the minimum of 3 the K-structure subgraph requires
    /// (orders 1 and 2 are pinned to the endpoints; at least one free
    /// structure node must remain).
    KTooSmall {
        /// The rejected value.
        k: usize,
    },
    /// The decay parameter θ of the normalized influence must be finite
    /// and non-negative.
    InvalidTheta {
        /// The rejected value.
        theta: f64,
    },
    /// `refit_every` must be at least one tick.
    ZeroRefitInterval,
    /// `max_backoff` must be at least 1 (1 = no backoff growth).
    ZeroBackoff,
    /// A sharded predictor needs at least one shard.
    ZeroShards,
    /// A coalescing queue must close batches at ≥ 1 request.
    ZeroBatch,
    /// A coalescing queue must admit at least one request.
    ZeroQueueCapacity,
    /// Batch dispatch needs at least one worker thread. (The serve
    /// layer's `score_batch_parallel` historically coerced `threads ==
    /// 0` to 1 silently; the coalescing front-end rejects it as a typed
    /// configuration error instead.)
    ZeroWorkerThreads,
    /// A zero-nanosecond default deadline budget would reject every
    /// request at admission.
    ZeroDeadline,
    /// A dataset specification failed [`datasets::DatasetSpec::builder`]
    /// validation (too few nodes/links, out-of-range probability, …).
    InvalidDatasetSpec {
        /// The underlying typed reason.
        spec: datasets::SpecError,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::KTooSmall { k } => {
                write!(f, "K must be at least 3, got {k}")
            }
            ConfigError::InvalidTheta { theta } => {
                write!(f, "theta must be finite and >= 0, got {theta}")
            }
            ConfigError::ZeroRefitInterval => {
                write!(f, "refit_every must be at least 1 tick")
            }
            ConfigError::ZeroBackoff => {
                write!(f, "max_backoff must be at least 1")
            }
            ConfigError::ZeroShards => {
                write!(f, "shard count must be at least 1")
            }
            ConfigError::ZeroBatch => {
                write!(f, "max_batch must be at least 1 request")
            }
            ConfigError::ZeroQueueCapacity => {
                write!(f, "queue_capacity must be at least 1 request")
            }
            ConfigError::ZeroWorkerThreads => {
                write!(f, "worker_threads must be at least 1")
            }
            ConfigError::ZeroDeadline => {
                write!(
                    f,
                    "default deadline budget must be at least 1 ns \
                     (or None for no deadline)"
                )
            }
            ConfigError::InvalidDatasetSpec { spec } => {
                write!(f, "invalid dataset spec: {spec}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Dataset-spec validation failures enter the taxonomy as configuration
/// errors: a bad spec is rejected before any generation work starts,
/// exactly like a bad predictor config.
impl From<datasets::SpecError> for SsfError {
    fn from(e: datasets::SpecError) -> Self {
        SsfError::Config(ConfigError::InvalidDatasetSpec { spec: e })
    }
}

/// Any error the SSF pipeline can produce, from ingestion to scoring.
///
/// Marked `#[non_exhaustive]`: future layers may add variants without a
/// breaking change, so downstream matches need a catch-all arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum SsfError {
    /// Structural violation while building or slicing a network.
    Graph(GraphError),
    /// The evaluation split could not be constructed.
    Split(SplitError),
    /// SSF extraction failed on a degenerate target pair.
    Extract(ExtractError),
    /// Model fitting failed (shape violation or ill-conditioned system).
    Fit(FitError),
    /// Underlying I/O failure while reading or writing artifacts.
    Io(std::io::Error),
    /// A predictor/serving configuration was rejected at build time.
    Config(ConfigError),
    /// Durable state on disk failed validation — a snapshot or WAL
    /// section with a bad checksum, a malformed record, or decoded
    /// structure that violates its own invariants. Recovery refuses to
    /// serve such state rather than guess at it.
    Corrupt {
        /// Which piece of durable state failed (`"header"`,
        /// `"graph.offsets"`, `"wal"`, `"snapshot"`, …).
        section: String,
        /// Human-readable description of the violation.
        detail: String,
    },
}

impl fmt::Display for SsfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsfError::Graph(e) => write!(f, "graph error: {e}"),
            SsfError::Split(e) => write!(f, "split error: {e}"),
            SsfError::Extract(e) => write!(f, "extraction error: {e}"),
            SsfError::Fit(e) => write!(f, "fit error: {e}"),
            SsfError::Io(e) => write!(f, "i/o error: {e}"),
            SsfError::Config(e) => write!(f, "config error: {e}"),
            SsfError::Corrupt { section, detail } => {
                write!(f, "corrupt {section}: {detail}")
            }
        }
    }
}

impl std::error::Error for SsfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SsfError::Graph(e) => Some(e),
            SsfError::Split(e) => Some(e),
            SsfError::Extract(e) => Some(e),
            SsfError::Fit(e) => Some(e),
            SsfError::Io(e) => Some(e),
            SsfError::Config(e) => Some(e),
            SsfError::Corrupt { .. } => None,
        }
    }
}

impl From<GraphError> for SsfError {
    fn from(e: GraphError) -> Self {
        SsfError::Graph(e)
    }
}

impl From<SplitError> for SsfError {
    fn from(e: SplitError) -> Self {
        SsfError::Split(e)
    }
}

impl From<ExtractError> for SsfError {
    fn from(e: ExtractError) -> Self {
        SsfError::Extract(e)
    }
}

impl From<FitError> for SsfError {
    fn from(e: FitError) -> Self {
        SsfError::Fit(e)
    }
}

impl From<std::io::Error> for SsfError {
    fn from(e: std::io::Error) -> Self {
        SsfError::Io(e)
    }
}

impl From<ConfigError> for SsfError {
    fn from(e: ConfigError) -> Self {
        SsfError::Config(e)
    }
}

/// Durability-layer errors fold into the unified taxonomy: I/O failures
/// join the existing [`SsfError::Io`] arm, corruption keeps its section
/// attribution in [`SsfError::Corrupt`].
impl From<ssf_persist::PersistError> for SsfError {
    fn from(e: ssf_persist::PersistError) -> Self {
        match e {
            ssf_persist::PersistError::Io(io) => SsfError::Io(io),
            ssf_persist::PersistError::Corrupt { section, detail } => {
                SsfError::Corrupt { section, detail }
            }
            other => SsfError::Corrupt {
                section: "persist".to_string(),
                detail: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes_layer_and_keeps_detail() {
        let e = SsfError::from(GraphError::SelfLoop { node: 3 });
        let text = e.to_string();
        assert!(text.starts_with("graph error:"), "got {text:?}");
        assert!(text.contains('3'));

        let e = SsfError::from(SplitError::EmptyNetwork);
        assert!(e.to_string().starts_with("split error:"));

        let e = SsfError::from(ExtractError::DegenerateTarget { node: 5 });
        assert!(e.to_string().starts_with("extraction error:"));

        let e = SsfError::from(FitError::EmptyDesign);
        assert!(e.to_string().starts_with("fit error:"));

        let e = SsfError::from(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            "gone",
        ));
        assert!(e.to_string().starts_with("i/o error:"));

        let e = SsfError::from(ConfigError::KTooSmall { k: 0 });
        let text = e.to_string();
        assert!(text.starts_with("config error:"), "got {text:?}");
        assert!(text.contains("at least 3"));

        let e = SsfError::Corrupt {
            section: "graph.offsets".to_string(),
            detail: "checksum mismatch".to_string(),
        };
        assert_eq!(e.to_string(), "corrupt graph.offsets: checksum mismatch");
    }

    #[test]
    fn persist_errors_fold_into_the_taxonomy() {
        let e = SsfError::from(ssf_persist::PersistError::Corrupt {
            section: "wal".to_string(),
            detail: "torn tail".to_string(),
        });
        assert!(matches!(e, SsfError::Corrupt { .. }), "{e}");
        assert_eq!(e.to_string(), "corrupt wal: torn tail");
        let e = SsfError::from(ssf_persist::PersistError::Io(
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        ));
        assert!(matches!(e, SsfError::Io(_)), "{e}");
    }

    #[test]
    fn config_error_renders_each_rejection() {
        let cases: Vec<(ConfigError, &str)> = vec![
            (ConfigError::KTooSmall { k: 2 }, "got 2"),
            (ConfigError::InvalidTheta { theta: -0.5 }, "-0.5"),
            (ConfigError::ZeroRefitInterval, "refit_every"),
            (ConfigError::ZeroBackoff, "max_backoff"),
            (ConfigError::ZeroShards, "shard count"),
            (ConfigError::ZeroBatch, "max_batch"),
            (ConfigError::ZeroQueueCapacity, "queue_capacity"),
            (ConfigError::ZeroWorkerThreads, "worker_threads"),
            (ConfigError::ZeroDeadline, "deadline budget"),
            (
                ConfigError::InvalidDatasetSpec {
                    spec: datasets::SpecError::ZeroTimeSpan,
                },
                "time span",
            ),
        ];
        for (e, needle) in cases {
            let text = e.to_string();
            assert!(text.contains(needle), "{text:?} missing {needle:?}");
        }
    }

    #[test]
    fn spec_errors_fold_into_config() {
        let e = SsfError::from(datasets::SpecError::TooFewNodes { nodes: 1 });
        assert!(
            matches!(
                e,
                SsfError::Config(ConfigError::InvalidDatasetSpec { .. })
            ),
            "{e}"
        );
        assert!(e.to_string().contains("invalid dataset spec"));
    }

    #[test]
    fn source_chain_exposes_the_wrapped_error() {
        use std::error::Error;
        let e = SsfError::from(GraphError::SelfLoop { node: 1 });
        let src = e.source().expect("wrapped error is the source");
        assert!(src.to_string().contains("self-loop"));
    }
}
