//! Request coalescing: a micro-batching queue in front of the snapshot
//! read path.
//!
//! Every concurrent caller that scores pairs one at a time pays the cold
//! per-pair extraction cost; the warm batch path
//! ([`ScoringSnapshot::score_batch`]) is ~23× faster per pair because one
//! batch shares one extraction cache. The [`Coalescer`] routes live
//! traffic into that path: requests from any number of submitter threads
//! queue in FIFO order, and a worker closes them into `score_batch`
//! calls. Three policies close a batch:
//!
//! * **`max_batch`** — the queue holds a full batch.
//! * **`max_delay`** — the oldest queued request has waited long enough
//!   (latency bound; a lone request never waits forever).
//! * **Epoch change** — a new snapshot was staged with
//!   [`Coalescer::set_snapshot`]; pending requests flush against the
//!   epoch they were admitted under before the swap takes effect.
//!
//! Admission is controlled, never blocking and never panicking: a full
//! queue returns [`Rejection::Overloaded`] immediately, and a request
//! whose deadline budget is already spent returns
//! [`Rejection::DeadlineExceeded`]. Requests that expire *while queued*
//! are rejected at batch-close time, strictly before any extraction work
//! is spent on them. Every rejected request increments exactly one of
//! `ssf.serve.rejected` (overload) or `ssf.serve.deadline_miss`
//! (deadline, at admission or in queue).
//!
//! Coalescing reorders *work*, never *values*: a batch is scored with
//! [`BatchScorer::score_batch_threads`], which is bit-identical to
//! scoring each pair alone (caches memoize values the pipeline would
//! recompute identically — the PR 2/4 contract). `tests/serving_slo.rs`
//! pins this with an interleaving proptest.
//!
//! Time is injected through [`Clock`], so every close policy is testable
//! with a [`MockClock`] and zero wall-clock sleeps; production uses
//! [`SystemClock`] and [`Coalescer::run_worker`].

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use dyngraph::NodeId;
use obs::ObsHandle;

use crate::error::{ConfigError, SsfError};
use crate::serve::{ScoringSnapshot, ShardedSnapshot};

/// A monotonic nanosecond clock the coalescer schedules against.
///
/// Production uses [`SystemClock`]; deterministic tests inject a
/// [`MockClock`] and advance it explicitly, so `max_delay` and deadline
/// behaviour is exact rather than sleep-and-hope.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary fixed origin. Must never decrease.
    fn now_ns(&self) -> u64;
}

/// The production [`Clock`]: monotonic time from [`Instant`].
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_ns(&self) -> u64 {
        // Saturate far beyond any realistic process lifetime.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A manually-advanced [`Clock`] for deterministic tests: time moves
/// only when [`MockClock::advance`] (or [`MockClock::set`]) is called.
#[derive(Debug, Default)]
pub struct MockClock {
    now: AtomicU64,
}

impl MockClock {
    /// A clock frozen at t = 0 ns.
    pub fn new() -> Self {
        MockClock::default()
    }

    /// Moves time forward by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }

    /// Jumps to an absolute instant; saturates monotonically (the clock
    /// never goes backwards, matching the [`Clock`] contract).
    pub fn set(&self, ns: u64) {
        self.now.fetch_max(ns, Ordering::SeqCst);
    }
}

impl Clock for MockClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

/// Anything the coalescer can drain a batch into.
///
/// Implemented by [`ScoringSnapshot`] and [`ShardedSnapshot`]; tests
/// wrap them to count exactly which pairs reach extraction. The
/// contract inherited from the serve layer: `score_batch_threads` must
/// be bit-identical to scoring each pair alone, at every thread count
/// and batch split.
pub trait BatchScorer: Send + Sync {
    /// A value that changes whenever the scorer's answers could change
    /// (the snapshot epoch). [`Coalescer::set_snapshot`] flushes pending
    /// requests before installing a scorer with a different key.
    fn epoch_key(&self) -> u64;

    /// Scores `pairs` in order, fanned over up to `threads` workers.
    fn score_batch_threads(
        &self,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> Vec<Option<f64>>;
}

impl BatchScorer for ScoringSnapshot {
    /// The publish epoch, mixed with the sliding window in force (if
    /// any): epoch-staged batching must also never mix two snapshots
    /// that happen to share a revision but disagree on the window, so
    /// the window bits fold into the key the same FNV-style way the
    /// sharded scorer folds shard epochs. Unbounded snapshots keep the
    /// bare epoch.
    fn epoch_key(&self) -> u64 {
        match self.window() {
            None => self.epoch(),
            Some(w) => {
                let wbits = (u64::from(w.width) << 32) | u64::from(w.horizon);
                (self.epoch() ^ wbits).wrapping_mul(0x0000_0100_0000_01b3)
            }
        }
    }

    fn score_batch_threads(
        &self,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> Vec<Option<f64>> {
        self.score_batch_parallel(pairs, threads)
    }
}

impl BatchScorer for ShardedSnapshot {
    /// Order-dependent mix of the per-shard epochs (FNV-style), so any
    /// shard publishing a new epoch changes the key.
    fn epoch_key(&self) -> u64 {
        self.epochs()
            .iter()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, &e| {
                (h ^ e).wrapping_mul(0x0000_0100_0000_01b3)
            })
    }

    fn score_batch_threads(
        &self,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> Vec<Option<f64>> {
        self.score_batch_parallel(pairs, threads)
    }
}

/// Why a request was rejected instead of scored.
///
/// Rejections are values, not panics: the serving loop stays up under
/// overload and expired budgets, and callers can distinguish "shed this
/// request" ([`Rejection::Overloaded`] — retry against another replica)
/// from "too late to be useful" ([`Rejection::DeadlineExceeded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Rejection {
    /// The bounded queue was full at admission. Carries the observed
    /// depth and the configured capacity.
    Overloaded {
        /// Queue depth at the rejected admission.
        depth: usize,
        /// Configured [`CoalesceConfig::queue_capacity`].
        capacity: usize,
    },
    /// The request's deadline passed — at admission, or while it sat in
    /// the queue (always before any extraction work was spent on it).
    DeadlineExceeded,
    /// The coalescer was shut down before the request could be scored.
    ShutDown,
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejection::Overloaded { depth, capacity } => write!(
                f,
                "overloaded: queue depth {depth} at capacity {capacity}"
            ),
            Rejection::DeadlineExceeded => {
                write!(f, "deadline exceeded before scoring")
            }
            Rejection::ShutDown => write!(f, "coalescer shut down"),
        }
    }
}

impl std::error::Error for Rejection {}

/// Micro-batching queue configuration. Construct through
/// [`CoalesceConfig::builder`]; the struct is `#[non_exhaustive]` and
/// the builder validates every degenerate value as a typed
/// [`ConfigError`] instead of silently coercing it at use sites.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct CoalesceConfig {
    /// Requests per batch at which the batch closes immediately.
    pub max_batch: usize,
    /// Oldest-request age (ns) at which a partial batch closes.
    pub max_delay_ns: u64,
    /// Bound on queued requests; admissions beyond it are
    /// [`Rejection::Overloaded`].
    pub queue_capacity: usize,
    /// Threads each batch fans out over
    /// (via [`BatchScorer::score_batch_threads`]).
    pub worker_threads: usize,
    /// Deadline budget (ns from admission) applied to [`Coalescer::
    /// submit`]; `None` means requests without an explicit budget never
    /// expire.
    pub default_deadline_ns: Option<u64>,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig {
            max_batch: 64,
            max_delay_ns: 200_000, // 200 µs
            queue_capacity: 1024,
            worker_threads: 1,
            default_deadline_ns: None,
        }
    }
}

impl CoalesceConfig {
    /// A validating builder starting from [`Default::default`].
    pub fn builder() -> CoalesceConfigBuilder {
        CoalesceConfigBuilder {
            config: CoalesceConfig::default(),
        }
    }
}

/// Builder for [`CoalesceConfig`];
/// [`build`](CoalesceConfigBuilder::build) rejects degenerate values.
#[derive(Debug, Clone)]
pub struct CoalesceConfigBuilder {
    config: CoalesceConfig,
}

impl CoalesceConfigBuilder {
    /// Sets [`CoalesceConfig::max_batch`].
    pub fn max_batch(mut self, n: usize) -> Self {
        self.config.max_batch = n;
        self
    }

    /// Sets [`CoalesceConfig::max_delay_ns`] (0 closes every batch at
    /// the first worker pass — valid, just batchless under low load).
    pub fn max_delay_ns(mut self, ns: u64) -> Self {
        self.config.max_delay_ns = ns;
        self
    }

    /// Sets [`CoalesceConfig::queue_capacity`].
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.config.queue_capacity = n;
        self
    }

    /// Sets [`CoalesceConfig::worker_threads`].
    pub fn worker_threads(mut self, n: usize) -> Self {
        self.config.worker_threads = n;
        self
    }

    /// Sets [`CoalesceConfig::default_deadline_ns`].
    pub fn default_deadline_ns(mut self, ns: Option<u64>) -> Self {
        self.config.default_deadline_ns = ns;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroBatch`] for `max_batch == 0`,
    /// [`ConfigError::ZeroQueueCapacity`] for `queue_capacity == 0`,
    /// [`ConfigError::ZeroWorkerThreads`] for `worker_threads == 0`
    /// (the serve layer's `score_batch_parallel` historically coerced 0
    /// to 1 silently; the front-end makes it a typed rejection), and
    /// [`ConfigError::ZeroDeadline`] for a zero-nanosecond default
    /// budget (every request would be born expired).
    pub fn build(self) -> Result<CoalesceConfig, SsfError> {
        let c = &self.config;
        if c.max_batch == 0 {
            return Err(ConfigError::ZeroBatch.into());
        }
        if c.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity.into());
        }
        if c.worker_threads == 0 {
            return Err(ConfigError::ZeroWorkerThreads.into());
        }
        if c.default_deadline_ns == Some(0) {
            return Err(ConfigError::ZeroDeadline.into());
        }
        Ok(self.config)
    }
}

/// Point-in-time counters of one [`Coalescer`].
///
/// The reconciliation invariants (pinned by `tests/serving_slo.rs`
/// under multi-threaded stress):
///
/// * `accepted + rejected() == submitted` — every submission is
///   accounted exactly once at admission.
/// * after a drain, `completed + expired == accepted` — every admitted
///   request is either scored or expired, never lost.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct CoalesceStats {
    /// Submission attempts, accepted or not.
    pub submitted: u64,
    /// Requests admitted into the queue.
    pub accepted: u64,
    /// Requests rejected at admission because the queue was full.
    pub rejected_overload: u64,
    /// Requests rejected at admission with an already-spent deadline.
    pub rejected_deadline: u64,
    /// Admitted requests whose deadline passed while queued (rejected at
    /// batch close, before extraction).
    pub expired: u64,
    /// Requests scored and delivered.
    pub completed: u64,
    /// Batches dispatched (empty batches are never dispatched).
    pub batches: u64,
    /// Requests pending in the queue right now.
    pub queue_depth: usize,
}

impl CoalesceStats {
    /// Requests rejected at admission, either reason.
    pub fn rejected(&self) -> u64 {
        self.rejected_overload + self.rejected_deadline
    }

    /// Requests whose deadline budget was missed (admission + in-queue).
    pub fn deadline_misses(&self) -> u64 {
        self.rejected_deadline + self.expired
    }

    /// Mean scored-batch size; 0 when no batch was dispatched.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completed as f64 / self.batches as f64
        }
    }
}

/// What one [`Coalescer::step`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct StepReport {
    /// Requests scored in the dispatched batch (0 = no batch closed).
    pub scored: usize,
    /// Requests expired out of the queue before scoring.
    pub expired: usize,
    /// Requests still queued after the step.
    pub remaining: usize,
    /// Whether a staged snapshot was installed.
    pub snapshot_installed: bool,
}

/// Outcome slot a submitter waits on.
#[derive(Debug)]
struct TicketInner {
    slot: Mutex<Option<Result<Option<f64>, Rejection>>>,
    ready: Condvar,
}

/// A handle to one in-flight request; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    inner: Arc<TicketInner>,
}

impl Ticket {
    fn new() -> (Ticket, Arc<TicketInner>) {
        let inner = Arc::new(TicketInner {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        });
        (
            Ticket {
                inner: Arc::clone(&inner),
            },
            inner,
        )
    }

    /// Blocks until the request is scored or rejected.
    pub fn wait(self) -> Result<Option<f64>, Rejection> {
        let mut slot = lock(&self.inner.slot);
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self
                .inner
                .ready
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking poll: `Some` once the outcome landed.
    pub fn try_take(&self) -> Option<Result<Option<f64>, Rejection>> {
        lock(&self.inner.slot).take()
    }
}

fn fulfill(ticket: &TicketInner, outcome: Result<Option<f64>, Rejection>) {
    *lock(&ticket.slot) = Some(outcome);
    ticket.ready.notify_all();
}

/// Poison-tolerant lock: the coalescer never panics while holding a
/// lock (scoring runs outside them and catches pair panics), so a
/// poisoned mutex still guards consistent state.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[derive(Debug)]
struct Pending {
    u: NodeId,
    v: NodeId,
    enqueued_ns: u64,
    deadline_ns: Option<u64>,
    ticket: Arc<TicketInner>,
}

struct State<S> {
    queue: VecDeque<Pending>,
    scorer: Arc<S>,
    /// Snapshot staged by [`Coalescer::set_snapshot`]; installed once
    /// the pre-swap queue has flushed.
    staged: Option<Arc<S>>,
    shutdown: bool,
}

struct Shared<S> {
    config: CoalesceConfig,
    clock: Arc<dyn Clock>,
    obs: ObsHandle,
    state: Mutex<State<S>>,
    /// Wakes the worker on submissions, snapshot swaps and shutdown.
    work: Condvar,
    /// Serializes dispatches so batches retire in FIFO order; submitters
    /// never touch it.
    step: Mutex<()>,
    submitted: AtomicU64,
    accepted: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_deadline: AtomicU64,
    expired: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
}

/// The micro-batching request queue. Cheap to clone (all clones share
/// one queue); submitters call [`Coalescer::submit`] from any thread
/// while one worker drives [`Coalescer::run_worker`] — or a test drives
/// [`Coalescer::step`] directly under a [`MockClock`].
pub struct Coalescer<S> {
    shared: Arc<Shared<S>>,
}

impl<S> Clone for Coalescer<S> {
    fn clone(&self) -> Self {
        Coalescer {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<S: BatchScorer> fmt::Debug for Coalescer<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("Coalescer")
            .field("config", &self.shared.config)
            .field("stats", &stats)
            .finish()
    }
}

impl<S: BatchScorer> Coalescer<S> {
    /// A coalescer over `scorer` driven by the system clock.
    pub fn new(scorer: S, config: CoalesceConfig) -> Self {
        Self::with_clock(scorer, config, Arc::new(SystemClock::new()))
    }

    /// [`Self::new`] with an injected [`Clock`] (tests pass a
    /// [`MockClock`] and drive [`Self::step`] deterministically).
    pub fn with_clock(
        scorer: S,
        config: CoalesceConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        Self::with_clock_and_recorder(scorer, config, clock, ObsHandle::noop())
    }

    /// Full constructor: injected clock plus telemetry. Emits
    /// `ssf.serve.queue_depth` (gauge), `ssf.serve.batch_size`
    /// (histogram), `ssf.serve.deadline_miss`, `ssf.serve.rejected` and
    /// `ssf.serve.coalesced` (counters), and an
    /// `ssf.serve.coalesce_batch` span per dispatched batch.
    pub fn with_clock_and_recorder(
        scorer: S,
        config: CoalesceConfig,
        clock: Arc<dyn Clock>,
        obs: ObsHandle,
    ) -> Self {
        Coalescer {
            shared: Arc::new(Shared {
                config,
                clock,
                obs,
                state: Mutex::new(State {
                    queue: VecDeque::new(),
                    scorer: Arc::new(scorer),
                    staged: None,
                    shutdown: false,
                }),
                work: Condvar::new(),
                step: Mutex::new(()),
                submitted: AtomicU64::new(0),
                accepted: AtomicU64::new(0),
                rejected_overload: AtomicU64::new(0),
                rejected_deadline: AtomicU64::new(0),
                expired: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                batches: AtomicU64::new(0),
            }),
        }
    }

    /// The validated configuration this coalescer runs.
    pub fn config(&self) -> &CoalesceConfig {
        &self.shared.config
    }

    /// The injected clock's current reading, in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.shared.clock.now_ns()
    }

    /// Submits one pair under the configured default deadline budget.
    ///
    /// Never blocks and never panics.
    ///
    /// # Errors
    ///
    /// [`Rejection::Overloaded`] when the queue is at capacity,
    /// [`Rejection::ShutDown`] after [`Self::shutdown`]. (The default
    /// budget can never be spent at admission — it is validated > 0 —
    /// so `submit` itself never returns `DeadlineExceeded`.)
    pub fn submit(&self, u: NodeId, v: NodeId) -> Result<Ticket, Rejection> {
        let now = self.shared.clock.now_ns();
        let deadline = self
            .shared
            .config
            .default_deadline_ns
            .map(|budget| now.saturating_add(budget));
        self.admit(u, v, now, deadline)
    }

    /// Submits with an explicit budget: the request expires `budget_ns`
    /// after admission (overriding the default).
    ///
    /// # Errors
    ///
    /// [`Rejection::DeadlineExceeded`] for a zero budget (spent on
    /// arrival), plus every [`Self::submit`] rejection.
    pub fn submit_with_budget(
        &self,
        u: NodeId,
        v: NodeId,
        budget_ns: u64,
    ) -> Result<Ticket, Rejection> {
        let now = self.shared.clock.now_ns();
        self.admit(u, v, now, Some(now.saturating_add(budget_ns)))
    }

    /// Submits with an absolute deadline on the coalescer's clock
    /// ([`Self::now_ns`]); a deadline at or before "now" is rejected at
    /// admission, before the request ever occupies a queue slot.
    ///
    /// # Errors
    ///
    /// [`Rejection::DeadlineExceeded`] for a spent deadline, plus every
    /// [`Self::submit`] rejection.
    pub fn submit_with_deadline(
        &self,
        u: NodeId,
        v: NodeId,
        deadline_ns: u64,
    ) -> Result<Ticket, Rejection> {
        self.admit(u, v, self.shared.clock.now_ns(), Some(deadline_ns))
    }

    fn admit(
        &self,
        u: NodeId,
        v: NodeId,
        now: u64,
        deadline_ns: Option<u64>,
    ) -> Result<Ticket, Rejection> {
        let shared = &*self.shared;
        shared.submitted.fetch_add(1, Ordering::Relaxed);
        // A spent budget is rejected before the queue is even consulted:
        // a dead request must not take a slot from a live one.
        if deadline_ns.is_some_and(|d| d <= now) {
            shared.rejected_deadline.fetch_add(1, Ordering::Relaxed);
            shared.obs.counter("ssf.serve.deadline_miss", 1);
            return Err(Rejection::DeadlineExceeded);
        }
        let mut state = lock(&shared.state);
        if state.shutdown {
            drop(state);
            shared.rejected_overload.fetch_add(1, Ordering::Relaxed);
            shared.obs.counter("ssf.serve.rejected", 1);
            return Err(Rejection::ShutDown);
        }
        let depth = state.queue.len();
        if depth >= shared.config.queue_capacity {
            drop(state);
            shared.rejected_overload.fetch_add(1, Ordering::Relaxed);
            shared.obs.counter("ssf.serve.rejected", 1);
            return Err(Rejection::Overloaded {
                depth,
                capacity: shared.config.queue_capacity,
            });
        }
        let (ticket, inner) = Ticket::new();
        state.queue.push_back(Pending {
            u,
            v,
            enqueued_ns: now,
            deadline_ns,
            ticket: inner,
        });
        let depth = state.queue.len();
        drop(state);
        shared.accepted.fetch_add(1, Ordering::Relaxed);
        if shared.obs.enabled() {
            shared.obs.gauge("ssf.serve.queue_depth", depth as f64);
        }
        shared.work.notify_one();
        Ok(ticket)
    }

    /// Stages a new snapshot. Requests already queued flush against the
    /// snapshot they were admitted under — the staged one is installed
    /// by the worker only once that queue has drained, so no batch ever
    /// mixes epochs. When the queue is empty the swap is immediate.
    pub fn set_snapshot(&self, scorer: S) {
        let mut state = lock(&self.shared.state);
        if state.queue.is_empty() {
            state.scorer = Arc::new(scorer);
            state.staged = None;
        } else {
            state.staged = Some(Arc::new(scorer));
        }
        drop(state);
        self.shared.work.notify_one();
    }

    /// The epoch key currently being scored against (staged snapshots
    /// don't count until installed).
    pub fn current_epoch_key(&self) -> u64 {
        lock(&self.shared.state).scorer.epoch_key()
    }

    /// Runs one scheduling pass at the clock's current instant:
    /// expires dead requests, closes at most one batch if any close
    /// policy fires, and installs a staged snapshot once the queue
    /// drains. This is the deterministic core the worker loop — and the
    /// mock-clock tests — drive.
    pub fn step(&self) -> StepReport {
        self.step_at(self.shared.clock.now_ns(), false)
    }

    /// [`Self::step`], but closes any non-empty batch immediately,
    /// ignoring `max_batch`/`max_delay`. Used at shutdown and by tests.
    pub fn flush(&self) -> StepReport {
        self.step_at(self.shared.clock.now_ns(), true)
    }

    fn step_at(&self, now: u64, force: bool) -> StepReport {
        let shared = &*self.shared;
        // One dispatch at a time: batches retire in FIFO order and the
        // staged-snapshot install can't race another dispatch.
        let _dispatch = lock(&shared.step);
        let mut report = StepReport::default();
        let mut state = lock(&shared.state);

        // 1. Expire dead requests first — before any extraction work.
        let expired: Vec<Pending> = {
            let mut kept = VecDeque::with_capacity(state.queue.len());
            let mut dead = Vec::new();
            for p in state.queue.drain(..) {
                if p.deadline_ns.is_some_and(|d| d <= now) {
                    dead.push(p);
                } else {
                    kept.push_back(p);
                }
            }
            state.queue = kept;
            dead
        };

        // 2. Decide whether a batch closes.
        let depth = state.queue.len();
        let oldest_age = state
            .queue
            .front()
            .map(|p| now.saturating_sub(p.enqueued_ns));
        let close = depth > 0
            && (force
                || depth >= shared.config.max_batch
                || oldest_age >= Some(shared.config.max_delay_ns)
                || state.staged.is_some()
                || state.shutdown);

        // 3. Take the batch (FIFO) and the scorer it was admitted under.
        let batch: Vec<Pending> = if close {
            let n = depth.min(shared.config.max_batch);
            state.queue.drain(..n).collect()
        } else {
            Vec::new()
        };
        let scorer = Arc::clone(&state.scorer);

        // 4. Install a staged snapshot once the pre-swap queue drained.
        if state.queue.is_empty() {
            if let Some(next) = state.staged.take() {
                state.scorer = next;
                report.snapshot_installed = true;
            }
        }
        report.remaining = state.queue.len();
        drop(state);

        // 5. Reject the expired (no scoring was spent on them).
        report.expired = expired.len();
        if !expired.is_empty() {
            shared
                .expired
                .fetch_add(expired.len() as u64, Ordering::Relaxed);
            shared
                .obs
                .counter("ssf.serve.deadline_miss", expired.len() as u64);
            for p in &expired {
                fulfill(&p.ticket, Err(Rejection::DeadlineExceeded));
            }
        }

        // 6. Score the batch outside every lock, then deliver in order.
        if !batch.is_empty() {
            let span = shared.obs.span("ssf.serve.coalesce_batch");
            let pairs: Vec<(NodeId, NodeId)> =
                batch.iter().map(|p| (p.u, p.v)).collect();
            let scores = scorer
                .score_batch_threads(&pairs, shared.config.worker_threads);
            span.finish();
            report.scored = batch.len();
            shared.batches.fetch_add(1, Ordering::Relaxed);
            shared
                .completed
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            if shared.obs.enabled() {
                shared
                    .obs
                    .counter("ssf.serve.coalesced", batch.len() as u64);
                shared
                    .obs
                    .observe_ns("ssf.serve.batch_size", batch.len() as u64);
                shared
                    .obs
                    .gauge("ssf.serve.queue_depth", report.remaining as f64);
            }
            for (p, score) in batch.iter().zip(scores) {
                fulfill(&p.ticket, Ok(score));
            }
        }
        report
    }

    /// The production worker loop: sleeps until a close policy can
    /// fire (full batch, `max_delay` on the oldest request, a request
    /// deadline, a staged snapshot, shutdown), then steps. Returns once
    /// [`Self::shutdown`] was called and the queue has drained.
    ///
    /// Meant for a dedicated thread; spawn it on a clone:
    /// `std::thread::spawn(move || worker.run_worker())`.
    pub fn run_worker(&self) {
        // Re-check period: bounds the race between reading the clock
        // and parking, so a concurrent clock advance is never missed
        // for long.
        const MAX_PARK: Duration = Duration::from_millis(5);
        loop {
            let mut state = lock(&self.shared.state);
            loop {
                let now = self.shared.clock.now_ns();
                if state.shutdown && state.queue.is_empty() {
                    return;
                }
                if self.due_locked(&state, now) {
                    break;
                }
                let park =
                    self.next_due_ns(&state, now).map_or(MAX_PARK, |ns| {
                        Duration::from_nanos(ns).min(MAX_PARK)
                    });
                state = self
                    .shared
                    .work
                    .wait_timeout(state, park)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
            drop(state);
            self.step();
        }
    }

    /// Whether any close/expiry/install policy fires at `now`.
    fn due_locked(&self, state: &State<S>, now: u64) -> bool {
        if state.shutdown && !state.queue.is_empty() {
            return true;
        }
        if state.staged.is_some() {
            return true;
        }
        let Some(front) = state.queue.front() else {
            return false;
        };
        state.queue.len() >= self.shared.config.max_batch
            || now.saturating_sub(front.enqueued_ns)
                >= self.shared.config.max_delay_ns
            || state
                .queue
                .iter()
                .any(|p| p.deadline_ns.is_some_and(|d| d <= now))
    }

    /// Nanoseconds until the earliest scheduled event (`max_delay` on
    /// the oldest request, or the nearest deadline); `None` when idle.
    fn next_due_ns(&self, state: &State<S>, now: u64) -> Option<u64> {
        let delay = state.queue.front().map(|p| {
            p.enqueued_ns
                .saturating_add(self.shared.config.max_delay_ns)
                .saturating_sub(now)
        });
        let deadline = state
            .queue
            .iter()
            .filter_map(|p| p.deadline_ns)
            .min()
            .map(|d| d.saturating_sub(now));
        match (delay, deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Initiates shutdown: future submissions are rejected with
    /// [`Rejection::ShutDown`], already-queued requests are flushed
    /// (scored) by the worker — or by direct [`Self::flush`] calls —
    /// and [`Self::run_worker`] returns once the queue drains.
    pub fn shutdown(&self) {
        lock(&self.shared.state).shutdown = true;
        self.shared.work.notify_all();
    }

    /// Point-in-time counters; see [`CoalesceStats`] for the
    /// reconciliation invariants.
    pub fn stats(&self) -> CoalesceStats {
        let shared = &*self.shared;
        let queue_depth = lock(&shared.state).queue.len();
        CoalesceStats {
            submitted: shared.submitted.load(Ordering::Relaxed),
            accepted: shared.accepted.load(Ordering::Relaxed),
            rejected_overload: shared.rejected_overload.load(Ordering::Relaxed),
            rejected_deadline: shared.rejected_deadline.load(Ordering::Relaxed),
            expired: shared.expired.load(Ordering::Relaxed),
            completed: shared.completed.load(Ordering::Relaxed),
            batches: shared.batches.load(Ordering::Relaxed),
            queue_depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scorer with a fixed epoch that returns `Some(u + v)` — enough
    /// to check routing without a fitted model.
    struct FakeScorer {
        epoch: u64,
    }

    impl BatchScorer for FakeScorer {
        fn epoch_key(&self) -> u64 {
            self.epoch
        }

        fn score_batch_threads(
            &self,
            pairs: &[(NodeId, NodeId)],
            _threads: usize,
        ) -> Vec<Option<f64>> {
            pairs.iter().map(|&(u, v)| Some(f64::from(u + v))).collect()
        }
    }

    fn coalescer(
        config: CoalesceConfig,
    ) -> (Coalescer<FakeScorer>, Arc<MockClock>) {
        let clock = Arc::new(MockClock::new());
        let c = Coalescer::with_clock(
            FakeScorer { epoch: 1 },
            config,
            Arc::<MockClock>::clone(&clock) as Arc<dyn Clock>,
        );
        (c, clock)
    }

    #[test]
    fn builder_rejects_degenerate_values() {
        for (builder, expect) in [
            (
                CoalesceConfig::builder().max_batch(0),
                ConfigError::ZeroBatch,
            ),
            (
                CoalesceConfig::builder().queue_capacity(0),
                ConfigError::ZeroQueueCapacity,
            ),
            (
                CoalesceConfig::builder().worker_threads(0),
                ConfigError::ZeroWorkerThreads,
            ),
            (
                CoalesceConfig::builder().default_deadline_ns(Some(0)),
                ConfigError::ZeroDeadline,
            ),
        ] {
            match builder.build() {
                Err(SsfError::Config(e)) => assert_eq!(e, expect),
                other => panic!("expected {expect:?}, got {other:?}"),
            }
        }
        assert!(CoalesceConfig::builder().build().is_ok());
    }

    #[test]
    fn submit_then_full_batch_dispatches_in_fifo_order() {
        let config = CoalesceConfig::builder()
            .max_batch(2)
            .max_delay_ns(u64::MAX >> 1)
            .build()
            .expect("valid");
        let (c, _clock) = coalescer(config);
        let t1 = c.submit(1, 2).expect("admitted");
        assert_eq!(c.step().scored, 0, "half a batch must wait");
        let t2 = c.submit(3, 4).expect("admitted");
        let report = c.step();
        assert_eq!(report.scored, 2);
        assert_eq!(t1.wait(), Ok(Some(3.0)));
        assert_eq!(t2.wait(), Ok(Some(7.0)));
    }

    #[test]
    fn shutdown_rejects_new_and_flushes_old() {
        let (c, _clock) = coalescer(CoalesceConfig::default());
        let t = c.submit(1, 1).expect("admitted");
        c.shutdown();
        match c.submit(2, 2) {
            Err(Rejection::ShutDown) => {}
            other => panic!("expected ShutDown, got {other:?}"),
        }
        let report = c.step();
        assert_eq!(report.scored, 1);
        assert_eq!(t.wait(), Ok(Some(2.0)));
    }

    #[test]
    fn rejection_messages_render() {
        assert!(Rejection::Overloaded {
            depth: 8,
            capacity: 8
        }
        .to_string()
        .contains("capacity 8"));
        assert!(Rejection::DeadlineExceeded.to_string().contains("deadline"));
        assert!(Rejection::ShutDown.to_string().contains("shut down"));
    }

    #[test]
    fn mock_clock_is_monotonic() {
        let clock = MockClock::new();
        clock.advance(10);
        clock.set(5); // must not go backwards
        assert_eq!(clock.now_ns(), 10);
        clock.set(25);
        assert_eq!(clock.now_ns(), 25);
    }
}
